"""Algorithm registry.

Maps the names the Athena NB API uses (``GenerateAlgorithm("kmeans",
k=8)``) onto estimator classes, organised by the Table IV categories.  The
Detector Manager consults the category to auto-configure the surrounding
pipeline (e.g. clustering needs marks for labelling, classification needs
labels for training).
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.errors import MLError
from repro.ml.base import Estimator
from repro.ml.forest import RandomForestClassifier
from repro.ml.gaussian_mixture import GaussianMixture
from repro.ml.gbt import GradientBoostedTrees
from repro.ml.kmeans import KMeans
from repro.ml.linear import LassoRegression, LinearRegression, RidgeRegression
from repro.ml.logistic import LogisticRegression
from repro.ml.naive_bayes import GaussianNaiveBayes
from repro.ml.online import (
    HalfSpaceTrees,
    OnlineGaussianNB,
    SlidingWindowDetector,
    StreamingKMeans,
)
from repro.ml.som import SelfOrganizingMap
from repro.ml.svm import LinearSVM
from repro.ml.threshold import ThresholdDetector

#: name -> (category, estimator class).  Categories follow Table IV.
_REGISTRY: Dict[str, tuple] = {
    "gradient_boosted_tree": ("boosting", GradientBoostedTrees),
    "decision_tree": ("classification", None),  # class set below to avoid cycle
    "logistic_regression": ("classification", LogisticRegression),
    "naive_bayes": ("classification", GaussianNaiveBayes),
    "random_forest": ("classification", RandomForestClassifier),
    "svm": ("classification", LinearSVM),
    "gaussian_mixture": ("clustering", GaussianMixture),
    "kmeans": ("clustering", KMeans),
    "lasso": ("regression", LassoRegression),
    "linear": ("regression", LinearRegression),
    "ridge": ("regression", RidgeRegression),
    "threshold": ("simple", ThresholdDetector),
    "som": ("clustering", SelfOrganizingMap),
    # Online learners for repro.streaming (per-event partial_fit/score_event).
    "online_naive_bayes": ("streaming", OnlineGaussianNB),
    "streaming_kmeans": ("streaming", StreamingKMeans),
    "half_space_trees": ("streaming", HalfSpaceTrees),
    "sliding_window": ("streaming", SlidingWindowDetector),
}

from repro.ml.tree import DecisionTreeClassifier  # noqa: E402

_REGISTRY["decision_tree"] = ("classification", DecisionTreeClassifier)


def list_algorithms(category: str = None) -> List[str]:
    """All registered algorithm names, optionally by category."""
    return sorted(
        name
        for name, (cat, _) in _REGISTRY.items()
        if category is None or cat == category
    )


def category_of(name: str) -> str:
    """Table IV category of an algorithm name."""
    entry = _REGISTRY.get(_normalise(name))
    if entry is None:
        raise MLError(f"unknown algorithm {name!r}; known: {list_algorithms()}")
    return entry[0]


def _normalise(name: str) -> str:
    collapsed = name.strip().lower().replace("-", "_").replace(" ", "_")
    if collapsed in _REGISTRY:
        return collapsed
    # "K-Means" -> "k_means" -> "kmeans"; registry names have no separators
    # where the compact form is the canonical one.
    squeezed = collapsed.replace("_", "")
    return squeezed if squeezed in _REGISTRY else collapsed


def create_algorithm(name: str, **params: Any) -> Estimator:
    """Instantiate an algorithm by name with keyword parameters."""
    entry = _REGISTRY.get(_normalise(name))
    if entry is None:
        raise MLError(f"unknown algorithm {name!r}; known: {list_algorithms()}")
    _category, cls = entry
    try:
        return cls(**params)
    except TypeError as exc:
        raise MLError(f"bad parameters for {name!r}: {exc}") from exc
