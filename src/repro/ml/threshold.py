"""The 'Simple' category: threshold-based detection.

A :class:`ThresholdDetector` flags an entry as anomalous when a chosen
feature column crosses a bound.  It is the only Athena algorithm exported
without a learning phase (the paper: "exports a pre-defined model without a
learning phase"), though :meth:`fit` can optionally calibrate the bound as
a quantile of benign training data.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import MLError
from repro.ml.base import Estimator, as_matrix, as_vector


class ThresholdDetector(Estimator):
    """Flag rows where ``column`` compares ``op`` against ``threshold``."""

    _OPS = {
        ">": np.greater,
        ">=": np.greater_equal,
        "<": np.less,
        "<=": np.less_equal,
        "==": np.equal,
        "!=": np.not_equal,
    }

    def __init__(
        self,
        column: int = 0,
        threshold: Optional[float] = None,
        op: str = ">",
        calibration_quantile: float = 0.99,
    ) -> None:
        if op not in self._OPS:
            raise MLError(f"unknown threshold operator {op!r}")
        self.column = column
        self.threshold = threshold
        self.op = op
        self.calibration_quantile = calibration_quantile

    def fit(self, X, y=None) -> "ThresholdDetector":
        """Calibrate the bound from benign rows when none was given."""
        if self.threshold is not None:
            return self
        X = as_matrix(X)
        values = X[:, self.column]
        if y is not None:
            y = as_vector(y, X.shape[0])
            benign = values[y == 0]
            values = benign if len(benign) else values
        if self.op in (">", ">="):
            self.threshold = float(np.quantile(values, self.calibration_quantile))
        else:
            self.threshold = float(np.quantile(values, 1 - self.calibration_quantile))
        return self

    def predict(self, X) -> np.ndarray:
        if self.threshold is None:
            raise MLError("ThresholdDetector has no threshold; call fit or set one")
        X = as_matrix(X)
        if self.column >= X.shape[1]:
            raise MLError(
                f"column {self.column} out of range for {X.shape[1]} features"
            )
        return self._OPS[self.op](X[:, self.column], self.threshold).astype(float)

    def decision_scores(self, X) -> np.ndarray:
        X = as_matrix(X)
        return X[:, self.column].astype(float)
