"""Detection metrics.

The paper reports *Detection Rate* (true-positive rate over malicious
entries) and *False Alarm Rate* (false-positive rate over benign entries);
both are derived from the confusion counts here, alongside the standard
accuracy / precision / recall / F1 helpers used in tests.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.errors import MLError


def confusion_counts(y_true, y_pred) -> Dict[str, int]:
    """TP/FP/TN/FN with 1 = malicious, 0 = benign."""
    y_true = np.asarray(y_true).ravel().astype(int)
    y_pred = np.asarray(y_pred).ravel().astype(int)
    if len(y_true) != len(y_pred):
        raise MLError(f"length mismatch: {len(y_true)} vs {len(y_pred)}")
    return {
        "tp": int(((y_true == 1) & (y_pred == 1)).sum()),
        "fp": int(((y_true == 0) & (y_pred == 1)).sum()),
        "tn": int(((y_true == 0) & (y_pred == 0)).sum()),
        "fn": int(((y_true == 1) & (y_pred == 0)).sum()),
    }


def detection_rate(y_true, y_pred) -> float:
    """TP / (TP + FN): fraction of malicious entries caught."""
    c = confusion_counts(y_true, y_pred)
    denominator = c["tp"] + c["fn"]
    return c["tp"] / denominator if denominator else 0.0


def false_alarm_rate(y_true, y_pred) -> float:
    """FP / (FP + TN): fraction of benign entries flagged."""
    c = confusion_counts(y_true, y_pred)
    denominator = c["fp"] + c["tn"]
    return c["fp"] / denominator if denominator else 0.0


def accuracy(y_true, y_pred) -> float:
    c = confusion_counts(y_true, y_pred)
    total = sum(c.values())
    return (c["tp"] + c["tn"]) / total if total else 0.0


def precision(y_true, y_pred) -> float:
    c = confusion_counts(y_true, y_pred)
    denominator = c["tp"] + c["fp"]
    return c["tp"] / denominator if denominator else 0.0


def recall(y_true, y_pred) -> float:
    return detection_rate(y_true, y_pred)


def f1_score(y_true, y_pred) -> float:
    p = precision(y_true, y_pred)
    r = recall(y_true, y_pred)
    return 2 * p * r / (p + r) if (p + r) else 0.0


def mean_squared_error(y_true, y_pred) -> float:
    y_true = np.asarray(y_true, dtype=float).ravel()
    y_pred = np.asarray(y_pred, dtype=float).ravel()
    if len(y_true) != len(y_pred):
        raise MLError(f"length mismatch: {len(y_true)} vs {len(y_pred)}")
    return float(np.mean((y_true - y_pred) ** 2))


def r2_score(y_true, y_pred) -> float:
    y_true = np.asarray(y_true, dtype=float).ravel()
    y_pred = np.asarray(y_pred, dtype=float).ravel()
    ss_res = float(np.sum((y_true - y_pred) ** 2))
    ss_tot = float(np.sum((y_true - y_true.mean()) ** 2))
    return 1.0 - ss_res / ss_tot if ss_tot else 0.0
