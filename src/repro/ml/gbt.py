"""Gradient boosted trees for binary classification.

Standard logistic-loss boosting: shallow regression trees fit the negative
gradient (residual between label and current probability) and their outputs
are added with a shrinkage factor.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.errors import MLError
from repro.ml.base import Estimator, as_matrix, as_vector
from repro.ml.logistic import _sigmoid
from repro.ml.tree import DecisionTreeRegressor


class GradientBoostedTrees(Estimator):
    """Logistic-loss gradient boosting with shallow CART regressors."""

    def __init__(
        self,
        n_estimators: int = 30,
        learning_rate: float = 0.2,
        max_depth: int = 3,
        min_samples_leaf: int = 1,
        seed: int = 0,
    ) -> None:
        if n_estimators < 1:
            raise MLError(f"n_estimators must be positive, got {n_estimators}")
        if not 0 < learning_rate <= 1:
            raise MLError(f"learning_rate must be in (0, 1], got {learning_rate}")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.seed = seed
        self.trees: Optional[List[DecisionTreeRegressor]] = None
        self.initial_score: float = 0.0

    def fit(self, X, y=None) -> "GradientBoostedTrees":
        if y is None:
            raise MLError("GradientBoostedTrees requires 0/1 labels")
        X = as_matrix(X)
        y = as_vector(y, X.shape[0])
        if not np.isin(np.unique(y), (0.0, 1.0)).all():
            raise MLError("GradientBoostedTrees labels must be 0/1")
        positive = np.clip(y.mean(), 1e-6, 1 - 1e-6)
        self.initial_score = float(np.log(positive / (1 - positive)))
        scores = np.full(X.shape[0], self.initial_score)
        self.trees = []
        for tree_idx in range(self.n_estimators):
            residuals = y - _sigmoid(scores)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                seed=self.seed + tree_idx + 1,
            )
            tree.fit(X, residuals)
            update = tree.predict(X)
            scores += self.learning_rate * update
            self.trees.append(tree)
        return self

    def decision_scores(self, X) -> np.ndarray:
        self._require_fitted("trees")
        X = as_matrix(X)
        scores = np.full(X.shape[0], self.initial_score)
        for tree in self.trees:
            scores += self.learning_rate * tree.predict(X)
        return _sigmoid(scores)

    def predict(self, X) -> np.ndarray:
        return (self.decision_scores(X) >= 0.5).astype(float)
