"""The Table IV preprocessor operators.

* ``Weighting`` — emphasize certain features (column multipliers),
* ``Sampling`` — select a subset of the entries,
* ``Normalization`` — standardize independent variables (min-max or z-score),
* ``Marking`` — annotate entries as malicious (handled upstream by the
  Athena preprocessor, which produces the mark vector these transforms
  carry along untouched).

All transforms follow fit/transform so parameters learned on the training
split are applied verbatim to the test split.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import MLError
from repro.ml.base import as_matrix


class MinMaxNormalizer:
    """Scale each column into [0, 1] using training-split extrema."""

    def __init__(self) -> None:
        self.minimum: Optional[np.ndarray] = None
        self.span: Optional[np.ndarray] = None

    def fit(self, X) -> "MinMaxNormalizer":
        X = as_matrix(X)
        self.minimum = X.min(axis=0)
        span = X.max(axis=0) - self.minimum
        span[span == 0] = 1.0
        self.span = span
        return self

    def transform(self, X) -> np.ndarray:
        if self.minimum is None:
            raise MLError("MinMaxNormalizer is not fitted")
        X = as_matrix(X)
        if X.shape[1] != len(self.minimum):
            raise MLError(
                f"column mismatch: fitted {len(self.minimum)}, got {X.shape[1]}"
            )
        return (X - self.minimum) / self.span

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)


class StandardScaler:
    """Zero-mean unit-variance scaling per column."""

    def __init__(self) -> None:
        self.mean: Optional[np.ndarray] = None
        self.std: Optional[np.ndarray] = None

    def fit(self, X) -> "StandardScaler":
        X = as_matrix(X)
        self.mean = X.mean(axis=0)
        std = X.std(axis=0)
        std[std == 0] = 1.0
        self.std = std
        return self

    def transform(self, X) -> np.ndarray:
        if self.mean is None:
            raise MLError("StandardScaler is not fitted")
        X = as_matrix(X)
        if X.shape[1] != len(self.mean):
            raise MLError(
                f"column mismatch: fitted {len(self.mean)}, got {X.shape[1]}"
            )
        return (X - self.mean) / self.std

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)


class Weighter:
    """Multiply feature columns by per-column weights (``Weighting``)."""

    def __init__(self, weights: Sequence[float]) -> None:
        self.weights = np.asarray(weights, dtype=float).ravel()
        if np.any(self.weights < 0):
            raise MLError("feature weights must be non-negative")

    def transform(self, X) -> np.ndarray:
        X = as_matrix(X)
        if X.shape[1] != len(self.weights):
            raise MLError(
                f"column mismatch: {len(self.weights)} weights, {X.shape[1]} columns"
            )
        return X * self.weights

    fit_transform = transform


class Sampler:
    """Uniformly sample a fraction of the rows (``Sampling``)."""

    def __init__(self, fraction: float, seed: int = 0) -> None:
        if not 0 < fraction <= 1:
            raise MLError(f"sampling fraction must be in (0, 1], got {fraction}")
        self.fraction = fraction
        self.seed = seed

    def sample_indices(self, n_rows: int) -> np.ndarray:
        rng = np.random.default_rng(self.seed)
        n_keep = max(1, int(round(n_rows * self.fraction)))
        return np.sort(rng.choice(n_rows, size=n_keep, replace=False))

    def transform(self, X, y=None):
        X = as_matrix(X)
        keep = self.sample_indices(X.shape[0])
        if y is not None:
            y = np.asarray(y).ravel()
            return X[keep], y[keep]
        return X[keep]

    fit_transform = transform
