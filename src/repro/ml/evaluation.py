"""Model evaluation utilities: splits, cross-validation, ROC analysis.

The Detector Manager validates models against held-out windows; these
helpers support the workflows around that — stratified splitting, k-fold
cross-validation of any registry algorithm, and threshold-free quality via
ROC curves / AUC over decision scores — plus an operating-point search that
picks the score threshold meeting a false-alarm budget (how an operator
would tune the paper's detectors).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import MLError
from repro.ml.base import Estimator, as_matrix, as_vector
from repro.ml.metrics import accuracy, detection_rate, false_alarm_rate


def train_test_split(
    X,
    y,
    test_fraction: float = 0.5,
    seed: int = 0,
    stratify: bool = True,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffle-split into train/test, optionally preserving class balance."""
    if not 0 < test_fraction < 1:
        raise MLError(f"test_fraction must be in (0, 1), got {test_fraction}")
    X = as_matrix(X)
    y = as_vector(y, X.shape[0])
    rng = np.random.default_rng(seed)
    if stratify:
        test_idx: List[int] = []
        for cls in np.unique(y):
            members = np.nonzero(y == cls)[0]
            rng.shuffle(members)
            n_test = max(1, int(round(len(members) * test_fraction)))
            test_idx.extend(members[:n_test])
        test_mask = np.zeros(len(y), dtype=bool)
        test_mask[test_idx] = True
    else:
        order = rng.permutation(len(y))
        n_test = max(1, int(round(len(y) * test_fraction)))
        test_mask = np.zeros(len(y), dtype=bool)
        test_mask[order[:n_test]] = True
    return X[~test_mask], y[~test_mask], X[test_mask], y[test_mask]


@dataclass
class CrossValidationResult:
    """Per-fold and aggregate metrics."""

    fold_scores: List[Dict[str, float]]

    def mean(self, metric: str) -> float:
        return float(np.mean([fold[metric] for fold in self.fold_scores]))

    def std(self, metric: str) -> float:
        return float(np.std([fold[metric] for fold in self.fold_scores]))


def k_fold_indices(n_rows: int, k: int, seed: int = 0) -> List[np.ndarray]:
    """Shuffled fold index arrays covering every row exactly once."""
    if k < 2:
        raise MLError(f"k must be >= 2, got {k}")
    if k > n_rows:
        raise MLError(f"k={k} exceeds the {n_rows} available rows")
    rng = np.random.default_rng(seed)
    order = rng.permutation(n_rows)
    return [fold for fold in np.array_split(order, k)]


def cross_validate(
    make_estimator: Callable[[], Estimator],
    X,
    y,
    k: int = 5,
    seed: int = 0,
    needs_cluster_labelling: bool = False,
) -> CrossValidationResult:
    """K-fold cross-validation of a supervised (or marked-cluster) model."""
    X = as_matrix(X)
    y = as_vector(y, X.shape[0])
    folds = k_fold_indices(X.shape[0], k, seed)
    scores: List[Dict[str, float]] = []
    for fold_idx, test_idx in enumerate(folds):
        train_mask = np.ones(X.shape[0], dtype=bool)
        train_mask[test_idx] = False
        estimator = make_estimator()
        if needs_cluster_labelling:
            estimator.fit(X[train_mask])
            estimator.label_clusters(X[train_mask], y[train_mask])
        else:
            estimator.fit(X[train_mask], y[train_mask])
        predictions = estimator.predict(X[test_idx])
        scores.append(
            {
                "fold": float(fold_idx),
                "accuracy": accuracy(y[test_idx], predictions),
                "detection_rate": detection_rate(y[test_idx], predictions),
                "false_alarm_rate": false_alarm_rate(y[test_idx], predictions),
            }
        )
    return CrossValidationResult(fold_scores=scores)


def roc_curve(
    y_true, scores
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(false-positive rates, true-positive rates, thresholds), score-sorted.

    Thresholds descend; a point (fpr[i], tpr[i]) is achieved by flagging
    every row with score >= thresholds[i].
    """
    y_true = as_vector(y_true)
    scores = as_vector(scores, len(y_true))
    positives = float((y_true == 1).sum())
    negatives = float((y_true == 0).sum())
    if positives == 0 or negatives == 0:
        raise MLError("ROC needs both classes present")
    order = np.argsort(-scores, kind="stable")
    sorted_scores = scores[order]
    sorted_labels = y_true[order]
    tp_cum = np.cumsum(sorted_labels == 1)
    fp_cum = np.cumsum(sorted_labels == 0)
    # Keep the last index of each distinct score (threshold boundaries).
    boundaries = np.nonzero(
        np.append(sorted_scores[1:] != sorted_scores[:-1], True)
    )[0]
    tpr = np.concatenate([[0.0], tp_cum[boundaries] / positives])
    fpr = np.concatenate([[0.0], fp_cum[boundaries] / negatives])
    thresholds = np.concatenate([[np.inf], sorted_scores[boundaries]])
    return fpr, tpr, thresholds


def auc_score(y_true, scores) -> float:
    """Area under the ROC curve (trapezoidal)."""
    fpr, tpr, _ = roc_curve(y_true, scores)
    widths = np.diff(fpr)
    heights = (tpr[1:] + tpr[:-1]) / 2.0
    return float((widths * heights).sum())


def operating_point(
    y_true,
    scores,
    max_false_alarm_rate: float,
) -> Tuple[float, float, float]:
    """The score threshold maximising DR subject to a FAR budget.

    Returns (threshold, detection_rate, false_alarm_rate) of the chosen
    point; raises if no threshold satisfies the budget.
    """
    fpr, tpr, thresholds = roc_curve(y_true, scores)
    feasible = np.nonzero(fpr <= max_false_alarm_rate)[0]
    if len(feasible) == 0:
        raise MLError(
            f"no operating point with FAR <= {max_false_alarm_rate}"
        )
    best = feasible[np.argmax(tpr[feasible])]
    return float(thresholds[best]), float(tpr[best]), float(fpr[best])
