"""Binary logistic regression trained by gradient descent.

Full-batch gradient descent with an optional L2 penalty; deterministic for
a given dataset.  Predicts 1 (malicious) when the estimated probability
crosses ``decision_threshold``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import MLError
from repro.ml.base import Estimator, as_matrix, as_vector


def _sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    exp_z = np.exp(z[~positive])
    out[~positive] = exp_z / (1.0 + exp_z)
    return out


class LogisticRegression(Estimator):
    """L2-regularised binary logistic regression."""

    def __init__(
        self,
        learning_rate: float = 0.5,
        max_iterations: int = 300,
        l2: float = 1e-4,
        tolerance: float = 1e-7,
        decision_threshold: float = 0.5,
    ) -> None:
        self.learning_rate = learning_rate
        self.max_iterations = max_iterations
        self.l2 = l2
        self.tolerance = tolerance
        self.decision_threshold = decision_threshold
        self.coefficients: Optional[np.ndarray] = None
        self.intercept: float = 0.0
        self.iterations_run = 0

    def fit(self, X, y=None) -> "LogisticRegression":
        if y is None:
            raise MLError("LogisticRegression requires 0/1 labels")
        X = as_matrix(X)
        y = as_vector(y, X.shape[0])
        if not np.isin(np.unique(y), (0.0, 1.0)).all():
            raise MLError("LogisticRegression labels must be 0/1")
        n, d = X.shape
        beta = np.zeros(d)
        intercept = 0.0
        previous_loss = np.inf
        for iteration in range(self.max_iterations):
            self.iterations_run = iteration + 1
            probabilities = _sigmoid(X @ beta + intercept)
            error = probabilities - y
            gradient = X.T @ error / n + self.l2 * beta
            intercept_gradient = float(error.mean())
            beta -= self.learning_rate * gradient
            intercept -= self.learning_rate * intercept_gradient
            eps = 1e-12
            loss = float(
                -np.mean(
                    y * np.log(probabilities + eps)
                    + (1 - y) * np.log(1 - probabilities + eps)
                )
                + 0.5 * self.l2 * beta @ beta
            )
            if abs(previous_loss - loss) < self.tolerance:
                break
            previous_loss = loss
        self.coefficients = beta
        self.intercept = intercept
        return self

    def predict_proba(self, X) -> np.ndarray:
        self._require_fitted("coefficients")
        return _sigmoid(as_matrix(X) @ self.coefficients + self.intercept)

    def predict(self, X) -> np.ndarray:
        return (self.predict_proba(X) >= self.decision_threshold).astype(float)

    def decision_scores(self, X) -> np.ndarray:
        return self.predict_proba(X)
