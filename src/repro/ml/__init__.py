"""Machine-learning library (the MLlib stand-in).

Implements every algorithm Athena's Detector Manager exposes (Table IV):

* Boosting — :class:`~repro.ml.gbt.GradientBoostedTrees`
* Classification — :class:`~repro.ml.tree.DecisionTreeClassifier`,
  :class:`~repro.ml.logistic.LogisticRegression`,
  :class:`~repro.ml.naive_bayes.GaussianNaiveBayes`,
  :class:`~repro.ml.forest.RandomForestClassifier`,
  :class:`~repro.ml.svm.LinearSVM`
* Clustering — :class:`~repro.ml.gaussian_mixture.GaussianMixture`,
  :class:`~repro.ml.kmeans.KMeans`
* Regression — :class:`~repro.ml.linear.LassoRegression`,
  :class:`~repro.ml.linear.LinearRegression`,
  :class:`~repro.ml.linear.RidgeRegression`
* Simple — :class:`~repro.ml.threshold.ThresholdDetector`

plus :class:`~repro.ml.som.SelfOrganizingMap` (the detector of Braga et
al. [10], used as a baseline) and the preprocessing operators of Table IV
(weighting, sampling, normalization, marking).
"""

from repro.ml.base import ClusteringModel, Estimator, Model
from repro.ml.evaluation import (
    auc_score,
    cross_validate,
    operating_point,
    roc_curve,
    train_test_split,
)
from repro.ml.forest import RandomForestClassifier
from repro.ml.gaussian_mixture import GaussianMixture
from repro.ml.gbt import GradientBoostedTrees
from repro.ml.kmeans import KMeans
from repro.ml.linear import LassoRegression, LinearRegression, RidgeRegression
from repro.ml.logistic import LogisticRegression
from repro.ml.metrics import (
    accuracy,
    confusion_counts,
    detection_rate,
    f1_score,
    false_alarm_rate,
    precision,
    recall,
)
from repro.ml.naive_bayes import GaussianNaiveBayes
from repro.ml.preprocessing import (
    MinMaxNormalizer,
    Sampler,
    StandardScaler,
    Weighter,
)
from repro.ml.registry import create_algorithm, list_algorithms
from repro.ml.som import SelfOrganizingMap
from repro.ml.svm import LinearSVM
from repro.ml.threshold import ThresholdDetector
from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor

__all__ = [
    "ClusteringModel",
    "Estimator",
    "Model",
    "auc_score",
    "cross_validate",
    "operating_point",
    "roc_curve",
    "train_test_split",
    "RandomForestClassifier",
    "GaussianMixture",
    "GradientBoostedTrees",
    "KMeans",
    "LassoRegression",
    "LinearRegression",
    "RidgeRegression",
    "LogisticRegression",
    "accuracy",
    "confusion_counts",
    "detection_rate",
    "f1_score",
    "false_alarm_rate",
    "precision",
    "recall",
    "GaussianNaiveBayes",
    "MinMaxNormalizer",
    "Sampler",
    "StandardScaler",
    "Weighter",
    "create_algorithm",
    "list_algorithms",
    "SelfOrganizingMap",
    "LinearSVM",
    "ThresholdDetector",
    "DecisionTreeClassifier",
    "DecisionTreeRegressor",
]
