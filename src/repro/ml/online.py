"""Online (streaming) learners — the per-event detection layer.

Batch estimators retrain from scratch; these learners fold one event at a
time through a common protocol so the streaming pipeline
(:mod:`repro.streaming`) can score every PacketIn / FlowRemoved / stats
event with bounded latency:

* :meth:`OnlineLearner.partial_fit` — absorb one observation, O(d) work;
* :meth:`OnlineLearner.score_event` — anomaly score for one vector,
  higher = more anomalous, no allocation beyond a few scalars;
* :meth:`OnlineLearner.predict_event` — boolean verdict from the score;
* :meth:`OnlineLearner.refresh` — periodic *off-path* maintenance
  (window swaps, cached-moment closes); never required for correctness
  of the hot path.

Every learner is also a normal :class:`~repro.ml.base.Estimator`, so the
batch ``fit``/``predict`` contract (and the algorithm registry) keeps
working: ``fit`` replays rows through ``partial_fit``, ``predict`` maps
``predict_event`` over rows.  All randomness is seeded at construction;
two identically-constructed learners fed the same events produce
identical scores — the streaming determinism contract rides on this.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Dict, List, Optional

import numpy as np

from repro.errors import MLError
from repro.ml.base import Estimator, as_matrix, as_vector

_MIN_VARIANCE = 1e-9


class OnlineLearner(Estimator):
    """Common protocol for per-event incremental detection."""

    def partial_fit(self, x, y=None) -> "OnlineLearner":
        """Absorb one observation (a 1-D vector, optional label)."""
        raise NotImplementedError

    def score_event(self, x) -> float:
        """Anomaly score of one vector; higher = more anomalous."""
        raise NotImplementedError

    def predict_event(self, x) -> bool:
        """Boolean anomaly verdict for one vector."""
        raise NotImplementedError

    def refresh(self) -> None:
        """Off-path periodic maintenance; default is a no-op."""

    # -- batch bridge (Estimator contract) ----------------------------------

    def fit(self, X, y=None) -> "OnlineLearner":
        X = as_matrix(X)
        labels = as_vector(y, X.shape[0]) if y is not None else None
        for i in range(X.shape[0]):
            self.partial_fit(X[i], labels[i] if labels is not None else None)
        self.refresh()
        return self

    def predict(self, X) -> np.ndarray:
        X = as_matrix(X)
        return np.array([float(self.predict_event(X[i])) for i in range(X.shape[0])])

    def decision_scores(self, X) -> np.ndarray:
        X = as_matrix(X)
        return np.array([self.score_event(X[i]) for i in range(X.shape[0])])


class _Welford:
    """Numerically stable running mean/variance of a scalar stream."""

    __slots__ = ("count", "mean", "m2")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self.m2 = 0.0

    def push(self, value: float) -> None:
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (value - self.mean)

    def std(self) -> float:
        if self.count < 2:
            return 0.0
        return math.sqrt(self.m2 / self.count)


class OnlineGaussianNB(OnlineLearner):
    """Incremental Gaussian naive Bayes from running sufficient statistics.

    The same per-class ``(count, sum, sum_of_squares)`` triples that
    :meth:`repro.ml.naive_bayes.GaussianNaiveBayes.fit_distributed` merges
    across partitions, maintained one event at a time.  With two or more
    observed classes the score is the posterior probability of class 1
    (malicious); with a single (benign) class the learner degrades to a
    density model and flags events whose log-likelihood sits more than
    ``n_sigma`` running standard deviations below the running mean.
    """

    def __init__(self, n_sigma: float = 3.0, decision_threshold: float = 0.5) -> None:
        self.n_sigma = n_sigma
        self.decision_threshold = decision_threshold
        #: class label -> [count, sum vector, sum-of-squares vector]
        self._stats: Dict[float, list] = {}
        self._closed: Optional[dict] = None
        self._loglik = _Welford()
        self.events_absorbed = 0

    def partial_fit(self, x, y=None) -> "OnlineGaussianNB":
        x = np.asarray(x, dtype=float).ravel()
        label = float(y) if y is not None else 0.0
        entry = self._stats.get(label)
        if entry is None:
            self._stats[label] = [1, x.copy(), np.square(x)]
        else:
            entry[0] += 1
            entry[1] += x
            entry[2] += np.square(x)
        self._closed = None
        self.events_absorbed += 1
        if len(self._stats) == 1:
            # Density-mode calibration: track the running distribution of
            # in-stream log-likelihoods here so score_event stays pure.
            self._loglik.push(float(self._log_likelihoods(x)[0]))
        return self

    def _close(self) -> dict:
        """Close the running moments into priors/means/variances (cached)."""
        if self._closed is not None:
            return self._closed
        if not self._stats:
            raise MLError("OnlineGaussianNB has absorbed no events")
        total = sum(entry[0] for entry in self._stats.values())
        classes = sorted(self._stats)
        means, variances, priors = [], [], []
        # Shared smoothing from the global second moment, mirroring the
        # distributed trainer's moment-based variance.
        g_sum = sum(entry[1] for entry in self._stats.values())
        g_sq = sum(entry[2] for entry in self._stats.values())
        g_mean = g_sum / total
        g_var = np.maximum(g_sq / total - g_mean ** 2, 0.0)
        smoothing = max(1e-9 * float(g_var.max()) if total > 1 else _MIN_VARIANCE,
                        _MIN_VARIANCE)
        for cls in classes:
            count, sums, squares = self._stats[cls]
            mean = sums / count
            means.append(mean)
            variances.append(np.maximum(squares / count - mean ** 2, 0.0) + smoothing)
            priors.append(count / total)
        self._closed = {
            "classes": classes,
            "priors": np.array(priors),
            "means": np.array(means),
            "variances": np.array(variances),
        }
        return self._closed

    def _log_likelihoods(self, x: np.ndarray) -> np.ndarray:
        closed = self._close()
        means, variances = closed["means"], closed["variances"]
        diff = x - means
        return (
            np.log(closed["priors"])
            - 0.5 * (np.log(2 * np.pi * variances).sum(axis=1)
                     + (diff * diff / variances).sum(axis=1))
        )

    def score_event(self, x) -> float:
        x = np.asarray(x, dtype=float).ravel()
        scores = self._log_likelihoods(x)
        classes = self._close()["classes"]
        if len(classes) >= 2 and 1.0 in classes:
            shifted = scores - scores.max()
            probabilities = np.exp(shifted)
            probabilities /= probabilities.sum()
            return float(probabilities[classes.index(1.0)])
        # Single-class density mode: z-score of the (benign) log-likelihood
        # against the running baseline maintained by partial_fit.
        loglik = float(scores[0])
        std = self._loglik.std()
        if std <= 0.0:
            return 0.0
        zscore = max(0.0, (self._loglik.mean - loglik) / std)
        return zscore / max(self.n_sigma, _MIN_VARIANCE)

    def predict_event(self, x) -> bool:
        classes = self._close()["classes"] if self._stats else []
        threshold = self.decision_threshold if (
            len(classes) >= 2 and 1.0 in classes
        ) else 1.0
        return self.score_event(x) > threshold

    # The batch bridge must not double-absorb rows at predict time, so
    # Estimator.predict stays as-is; fit requires labels to be meaningful
    # but tolerates their absence (benign-density mode).


class StreamingKMeans(OnlineLearner):
    """Mini-batch K-Means with per-center learning-rate decay.

    Centers seed from the first ``k`` distinct events; each subsequent
    event moves its nearest center by ``1 / min(center_count, decay_cap)``
    of the residual (the MacQueen update with a floor on the learning
    rate so centers keep tracking drift).  The anomaly score is the
    distance to the nearest center; the verdict compares it against the
    running mean + ``n_sigma`` · std of scored distances.
    """

    def __init__(
        self,
        k: int = 8,
        seed: int = 0,
        n_sigma: float = 3.0,
        decay_cap: int = 1000,
    ) -> None:
        if k < 1:
            raise MLError(f"k must be positive, got {k}")
        self.k = k
        self.seed = seed
        self.n_sigma = n_sigma
        self.decay_cap = decay_cap
        self.centers: List[np.ndarray] = []
        self.counts: List[int] = []
        self._distance = _Welford()
        self.events_absorbed = 0

    def _nearest(self, x: np.ndarray):
        best, best_sq = 0, math.inf
        for index, center in enumerate(self.centers):
            diff = x - center
            sq = float(diff @ diff)
            if sq < best_sq:
                best, best_sq = index, sq
        return best, best_sq

    def partial_fit(self, x, y=None) -> "StreamingKMeans":
        x = np.asarray(x, dtype=float).ravel()
        self.events_absorbed += 1
        if len(self.centers) < self.k:
            # Seed from distinct observations only, so duplicate warmup
            # events cannot collapse several centers onto one point.
            if not any(np.array_equal(x, c) for c in self.centers):
                self.centers.append(x.copy())
                self.counts.append(1)
                return self
        if not self.centers:
            return self
        index, _ = self._nearest(x)
        self.counts[index] += 1
        rate = 1.0 / min(self.counts[index], self.decay_cap)
        self.centers[index] = self.centers[index] + rate * (x - self.centers[index])
        return self

    def score_event(self, x) -> float:
        if not self.centers:
            return 0.0
        x = np.asarray(x, dtype=float).ravel()
        _, best_sq = self._nearest(x)
        return math.sqrt(best_sq)

    def predict_event(self, x) -> bool:
        score = self.score_event(x)
        mean, std = self._distance.mean, self._distance.std()
        self._distance.push(score)
        if self._distance.count < max(self.k + 2, 10) or std <= 0.0:
            return False
        return score > mean + self.n_sigma * std


class HalfSpaceTrees(OnlineLearner):
    """A Half-Space-Trees-style streaming isolation ensemble.

    Each tree is a full binary tree over a randomly perturbed workspace of
    the (running min/max normalised) feature space; internal nodes split a
    random dimension at the midpoint of their region.  Every event
    increments the *latest* mass of the leaf it lands in; scoring sums the
    *reference* mass of the leaf weighted by ``2^depth`` across trees, so
    events in sparsely populated regions score low mass = high anomaly.
    :meth:`refresh` (the off-path window swap) promotes latest mass to
    reference and zeroes the window — exactly the original algorithm's
    model update, kept off the per-event hot path.
    """

    def __init__(
        self,
        n_trees: int = 15,
        depth: int = 6,
        window_size: int = 250,
        seed: int = 0,
        anomaly_ratio: float = 0.1,
    ) -> None:
        if n_trees < 1 or depth < 1:
            raise MLError("HalfSpaceTrees needs n_trees >= 1 and depth >= 1")
        self.n_trees = n_trees
        self.depth = depth
        self.window_size = window_size
        self.seed = seed
        self.anomaly_ratio = anomaly_ratio
        self._rng = np.random.default_rng(seed)
        self._dims: Optional[int] = None
        self._split_dims: List[np.ndarray] = []      # per tree, per node
        self._workspace: List[np.ndarray] = []       # per tree: (d, 2) bounds
        self._reference: List[np.ndarray] = []       # per tree leaf mass
        self._latest: List[np.ndarray] = []
        self._lo: Optional[np.ndarray] = None        # running feature mins
        self._hi: Optional[np.ndarray] = None
        self._score_mean = _Welford()
        self._window_fill = 0
        self.windows_closed = 0
        self.events_absorbed = 0

    def _build(self, d: int) -> None:
        self._dims = d
        n_internal = (1 << self.depth) - 1
        n_leaves = 1 << self.depth
        for _ in range(self.n_trees):
            # Classic HS-tree workspace: per-dimension random pivot s with
            # bounds s ± 2·max(s, 1-s), covering [0,1] wherever s lands.
            pivots = self._rng.uniform(0.0, 1.0, size=d)
            span = 2.0 * np.maximum(pivots, 1.0 - pivots)
            workspace = np.stack([pivots - span, pivots + span], axis=1)
            self._workspace.append(workspace)
            self._split_dims.append(
                self._rng.integers(0, d, size=n_internal)
            )
            self._reference.append(np.zeros(n_leaves))
            self._latest.append(np.zeros(n_leaves))

    def _normalise(self, x: np.ndarray) -> np.ndarray:
        if self._lo is None:
            self._lo = x.copy()
            self._hi = x.copy()
        else:
            np.minimum(self._lo, x, out=self._lo)
            np.maximum(self._hi, x, out=self._hi)
        span = self._hi - self._lo
        safe = np.where(span > 0.0, span, 1.0)
        return (x - self._lo) / safe

    def _leaf(self, tree: int, z: np.ndarray) -> int:
        lo = self._workspace[tree][:, 0].copy()
        hi = self._workspace[tree][:, 1].copy()
        dims = self._split_dims[tree]
        node = 0
        for _ in range(self.depth):
            dim = dims[node]
            mid = 0.5 * (lo[dim] + hi[dim])
            if z[dim] < mid:
                hi[dim] = mid
                node = 2 * node + 1
            else:
                lo[dim] = mid
                node = 2 * node + 2
        return node - ((1 << self.depth) - 1)

    def partial_fit(self, x, y=None) -> "HalfSpaceTrees":
        x = np.asarray(x, dtype=float).ravel()
        if self._dims is None:
            self._build(len(x))
        z = self._normalise(x)
        for tree in range(self.n_trees):
            self._latest[tree][self._leaf(tree, z)] += 1.0
        self.events_absorbed += 1
        self._window_fill += 1
        if self._window_fill >= self.window_size:
            # Self-triggered swap keeps the model live even when no
            # periodic refresh is armed; refresh() does the same off-path.
            self.refresh()
        return self

    def score_event(self, x) -> float:
        if self._dims is None:
            return 0.0
        x = np.asarray(x, dtype=float).ravel()
        z = self._normalise(x)
        mass = 0.0
        for tree in range(self.n_trees):
            mass += float(self._reference[tree][self._leaf(tree, z)])
        # Invert and normalise: empty regions score 1, dense regions -> 0.
        score = 1.0 / (1.0 + mass)
        self._score_mean.push(score)
        return score

    def predict_event(self, x) -> bool:
        score = self.score_event(x)
        if self.windows_closed == 0:
            return False  # no reference window yet — still learning
        mean, std = self._score_mean.mean, self._score_mean.std()
        if std <= 0.0:
            return score >= self.anomaly_ratio
        return score > mean + 3.0 * std and score >= self.anomaly_ratio

    def refresh(self) -> None:
        """Promote the latest mass window to reference (off-path)."""
        if self._dims is None:
            return
        if self._window_fill == 0 and self.windows_closed > 0:
            return
        for tree in range(self.n_trees):
            self._reference[tree] = (
                self._reference[tree] + self._latest[tree]
            ) * 0.5 if self.windows_closed else self._latest[tree].copy()
            self._latest[tree][:] = 0.0
        self._window_fill = 0
        self.windows_closed += 1


class SlidingWindowDetector(OnlineLearner):
    """Sliding-window threshold / sequence detector over one feature.

    Keeps the last ``window`` values of ``column``; an event is anomalous
    when its value crosses ``threshold`` *and* at least ``min_hits`` of
    the current window cross it too — the sequence requirement that
    separates a sustained pattern (scan, flood) from a one-sample spike.
    With no static threshold, the bound calibrates on line as
    mean + ``n_sigma`` · std of everything seen (Welford).
    """

    def __init__(
        self,
        column: int = 0,
        threshold: Optional[float] = None,
        window: int = 16,
        min_hits: int = 3,
        n_sigma: float = 3.0,
    ) -> None:
        if window < 1:
            raise MLError(f"window must be positive, got {window}")
        if min_hits < 1 or min_hits > window:
            raise MLError(f"min_hits must be in [1, {window}], got {min_hits}")
        self.column = column
        self.threshold = threshold
        self.window = window
        self.min_hits = min_hits
        self.n_sigma = n_sigma
        self._values: deque = deque(maxlen=window)
        self._running = _Welford()
        self.events_absorbed = 0

    def _value(self, x) -> float:
        x = np.asarray(x, dtype=float).ravel()
        if self.column >= len(x):
            raise MLError(
                f"column {self.column} out of range for {len(x)} features"
            )
        return float(x[self.column])

    def _bound(self) -> Optional[float]:
        if self.threshold is not None:
            return self.threshold
        if self._running.count < self.window:
            return None  # still calibrating
        return self._running.mean + self.n_sigma * self._running.std()

    def partial_fit(self, x, y=None) -> "SlidingWindowDetector":
        value = self._value(x)
        self._values.append(value)
        self._running.push(value)
        self.events_absorbed += 1
        return self

    def score_event(self, x) -> float:
        bound = self._bound()
        if bound is None or not self._values:
            return 0.0
        hits = sum(1 for value in self._values if value > bound)
        return hits / len(self._values)

    def predict_event(self, x) -> bool:
        bound = self._bound()
        if bound is None:
            return False
        if self._value(x) <= bound:
            return False
        hits = sum(1 for value in self._values if value > bound)
        return hits + 1 >= self.min_hits
