"""Self-organizing map — the detector of Braga et al. [10].

The paper's Table VI compares Athena's K-Means DDoS detector against the
SOM-based detector of the prior work, so the baseline package needs a SOM.
This is a classic rectangular-grid Kohonen map with Gaussian neighbourhood
and exponentially decaying learning rate, plus the same marked-cluster
labelling used by Athena's clustering models (each neuron becomes a
cluster).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import MLError
from repro.ml.base import ClusteringModel, as_matrix


class SelfOrganizingMap(ClusteringModel):
    """A Kohonen SOM on a ``rows x cols`` grid."""

    def __init__(
        self,
        rows: int = 3,
        cols: int = 3,
        epochs: int = 10,
        learning_rate: float = 0.5,
        sigma: Optional[float] = None,
        seed: int = 0,
        malicious_threshold: float = 0.5,
    ) -> None:
        super().__init__(malicious_threshold)
        if rows < 1 or cols < 1:
            raise MLError(f"invalid SOM grid {rows}x{cols}")
        self.rows = rows
        self.cols = cols
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.sigma = sigma or max(rows, cols) / 2.0
        self.seed = seed
        self.weights: Optional[np.ndarray] = None  # (rows*cols, d)
        self._grid: Optional[np.ndarray] = None  # (rows*cols, 2)

    def _build_grid(self) -> np.ndarray:
        coords = [(r, c) for r in range(self.rows) for c in range(self.cols)]
        return np.asarray(coords, dtype=float)

    def fit(self, X, y=None) -> "SelfOrganizingMap":
        X = as_matrix(X)
        n, d = X.shape
        if n == 0:
            raise MLError("cannot fit a SOM on an empty dataset")
        rng = np.random.default_rng(self.seed)
        self._grid = self._build_grid()
        n_units = self.rows * self.cols
        self.weights = X[rng.integers(0, n, size=n_units)].astype(float)
        total_steps = self.epochs * n
        step = 0
        for _epoch in range(self.epochs):
            order = rng.permutation(n)
            for idx in order:
                step += 1
                progress = step / total_steps
                lr = self.learning_rate * np.exp(-3.0 * progress)
                sigma = max(0.5, self.sigma * np.exp(-3.0 * progress))
                row = X[idx]
                bmu = int(np.argmin(((self.weights - row) ** 2).sum(axis=1)))
                grid_dist_sq = ((self._grid - self._grid[bmu]) ** 2).sum(axis=1)
                influence = np.exp(-grid_dist_sq / (2 * sigma ** 2))
                self.weights += lr * influence[:, None] * (row - self.weights)
        return self

    def assign(self, X) -> np.ndarray:
        self._require_fitted("weights")
        X = as_matrix(X)
        cross = X @ self.weights.T
        sq_norms = (self.weights ** 2).sum(axis=1)
        return np.argmin(sq_norms[None, :] - 2 * cross, axis=1)

    def n_clusters_fitted(self) -> int:
        self._require_fitted("weights")
        return self.weights.shape[0]

    def bmu_coordinates(self, X) -> np.ndarray:
        """Grid (row, col) of the best-matching unit per input row."""
        assignments = self.assign(X)
        return self._grid[assignments]

    def quantization_error(self, X) -> float:
        """Mean distance to the best-matching unit."""
        self._require_fitted("weights")
        X = as_matrix(X)
        assignments = self.assign(X)
        return float(
            np.mean(np.sqrt(((X - self.weights[assignments]) ** 2).sum(axis=1)))
        )
