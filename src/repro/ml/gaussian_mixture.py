"""Gaussian mixture models fitted by expectation-maximisation.

Diagonal covariances keep the implementation robust on the scaled feature
matrices Athena produces, and make each EM step a pair of vectorised
passes.  Inherits the marked-cluster labelling scheme from
:class:`~repro.ml.base.ClusteringModel`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import MLError
from repro.ml.base import ClusteringModel, as_matrix

_MIN_VARIANCE = 1e-6


class GaussianMixture(ClusteringModel):
    """Diagonal-covariance GMM via EM with k-means-style seeding."""

    def __init__(
        self,
        k: int = 2,
        max_iterations: int = 100,
        tolerance: float = 1e-4,
        seed: int = 0,
        malicious_threshold: float = 0.5,
    ) -> None:
        super().__init__(malicious_threshold)
        if k < 1:
            raise MLError(f"k must be positive, got {k}")
        self.k = k
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.seed = seed
        self.means: Optional[np.ndarray] = None
        self.variances: Optional[np.ndarray] = None
        self.weights: Optional[np.ndarray] = None
        self.log_likelihood: Optional[float] = None
        self.iterations_run = 0

    def _log_prob(self, X: np.ndarray) -> np.ndarray:
        """(n, k) log density of each row under each component."""
        n, d = X.shape
        log_probs = np.empty((n, self.means.shape[0]))
        for j in range(self.means.shape[0]):
            var = self.variances[j]
            diff = X - self.means[j]
            log_probs[:, j] = (
                -0.5 * (np.log(2 * np.pi * var).sum() + ((diff ** 2) / var).sum(axis=1))
            )
        return log_probs + np.log(self.weights)

    def fit(self, X, y=None) -> "GaussianMixture":
        X = as_matrix(X)
        n, d = X.shape
        if n == 0:
            raise MLError("cannot fit GaussianMixture on an empty dataset")
        k = min(self.k, n)
        rng = np.random.default_rng(self.seed)
        # Seed means from distinct random rows; variances from global spread.
        self.means = X[rng.choice(n, size=k, replace=False)].astype(float)
        global_var = X.var(axis=0) + _MIN_VARIANCE
        self.variances = np.tile(global_var, (k, 1))
        self.weights = np.full(k, 1.0 / k)
        previous_ll = -np.inf
        for iteration in range(self.max_iterations):
            self.iterations_run = iteration + 1
            # E-step.
            log_probs = self._log_prob(X)
            max_log = log_probs.max(axis=1, keepdims=True)
            probs = np.exp(log_probs - max_log)
            totals = probs.sum(axis=1, keepdims=True)
            responsibilities = probs / totals
            log_likelihood = float((np.log(totals).ravel() + max_log.ravel()).sum())
            # M-step.
            weights = responsibilities.sum(axis=0)
            safe = np.maximum(weights, 1e-12)
            self.means = (responsibilities.T @ X) / safe[:, None]
            for j in range(k):
                diff = X - self.means[j]
                self.variances[j] = (
                    (responsibilities[:, j][:, None] * diff ** 2).sum(axis=0) / safe[j]
                ) + _MIN_VARIANCE
            self.weights = weights / n
            if abs(log_likelihood - previous_ll) < self.tolerance * max(
                1.0, abs(previous_ll)
            ):
                previous_ll = log_likelihood
                break
            previous_ll = log_likelihood
        self.log_likelihood = previous_ll
        return self

    def assign(self, X) -> np.ndarray:
        self._require_fitted("means")
        return np.argmax(self._log_prob(as_matrix(X)), axis=1)

    def n_clusters_fitted(self) -> int:
        self._require_fitted("means")
        return self.means.shape[0]

    def decision_scores(self, X) -> np.ndarray:
        """Negative max log-density: higher means more anomalous."""
        self._require_fitted("means")
        return -np.max(self._log_prob(as_matrix(X)), axis=1)
