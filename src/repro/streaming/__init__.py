"""repro.streaming — event-driven detection with online learners.

The batch path (DetectorManager + FeatureManager) materialises features
per polling round and retrains models from scratch.  This subsystem is
the per-event alternative (docs/STREAMING.md):

* :class:`StreamingFeatureState` folds PacketIn / FlowRemoved / stats
  events into incremental feature state — running counts, rates, and
  variation statistics under their FEATURE_CATALOG names;
* :class:`StreamingPipeline` subscribes to each controller instance's
  EventBus and turns every event into a :class:`StreamEvent`;
* :class:`StreamingDetectorManager` scores each event through the
  online learners of :mod:`repro.ml.online` (``partial_fit`` /
  ``score_event``) and emits alerts with bounded per-event latency —
  no full retrain ever happens on the hot path; periodic model refresh
  runs off-path on the sim clock.
"""

from dataclasses import dataclass

from repro.streaming.detector import StreamingAlert, StreamingDetectorManager
from repro.streaming.pipeline import StreamEvent, StreamingPipeline
from repro.streaming.state import (
    STREAMING_CONTROL_FEATURES,
    STREAMING_FLOW_FEATURES,
    STREAMING_SWITCH_FEATURES,
    StreamingFeatureState,
)


@dataclass
class StreamingRuntime:
    """The wired streaming stack of one deployment (pipeline + detectors)."""

    pipeline: StreamingPipeline
    detectors: StreamingDetectorManager

    def summary(self) -> dict:
        return {
            **self.pipeline.summary(),
            "detectors": self.detectors.summaries(),
            "alerts_emitted": len(self.detectors.alerts),
            "refreshes": self.detectors.refreshes,
        }

__all__ = [
    "STREAMING_CONTROL_FEATURES",
    "STREAMING_FLOW_FEATURES",
    "STREAMING_SWITCH_FEATURES",
    "StreamEvent",
    "StreamingAlert",
    "StreamingRuntime",
    "StreamingDetectorManager",
    "StreamingFeatureState",
    "StreamingPipeline",
]
