"""Incremental feature state for the streaming pipeline.

One :class:`StreamingFeatureState` per Athena instance keeps its own
:class:`~repro.core.features.stateful.FlowStateTable` and
:class:`~repro.core.features.variation.VariationTracker` — deliberately
*separate* from the batch FeatureGenerator's tables, so enabling
streaming never perturbs the batch path (the equivalence tests rely on
this).  Every fold returns a flat ``{CATALOG_NAME: value}`` dict; the
names are declared below as module constants so the ATH2xx lint checker
and :meth:`FeatureCatalog.validate` both guard them against catalog
drift.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.core.features import combination, protocol
from repro.core.features.catalog import FEATURE_CATALOG
from repro.core.features.stateful import FlowStateTable
from repro.core.features.variation import VariationTracker
from repro.openflow.messages import FlowRemoved, FlowStatsEntry, PacketIn

#: Indicator keys copied from a match/header dict into stream events.
_INDICATOR_KEYS = (
    "eth_src",
    "eth_dst",
    "ip_src",
    "ip_dst",
    "ip_proto",
    "tcp_src",
    "tcp_dst",
)

#: Flow-scope features the streaming path computes per event.
STREAMING_FLOW_FEATURES = (
    "FLOW_PACKET_COUNT",
    "FLOW_BYTE_COUNT",
    "FLOW_BYTE_PER_PACKET",
    "FLOW_PACKET_PER_DURATION",
    "FLOW_BYTE_PER_DURATION",
    "PAIR_FLOW",
    "FLOW_IS_NEW",
    "FLOW_SAMPLE_COUNT",
    "SRC_FLOW_FANOUT",
    "DST_FLOW_FANIN",
)

#: Switch-scope features read from the non-resetting state snapshot.
STREAMING_SWITCH_FEATURES = (
    "PAIR_FLOW_RATIO",
    "SINGLE_FLOW_RATIO",
    "TOTAL_TRACKED_FLOWS",
    "UNIQUE_SRC_COUNT",
    "UNIQUE_DST_COUNT",
    "FLOWS_PER_SRC",
    "FLOWS_PER_DST",
)

#: Control-scope features folded from per-switch message counters.
STREAMING_CONTROL_FEATURES = (
    "PACKET_IN_COUNT",
    "FLOW_REMOVED_COUNT",
    "CONTROL_MSG_TOTAL",
)

# Fail at import time if any streaming feature name drifts from Table I.
FEATURE_CATALOG.validate(
    STREAMING_FLOW_FEATURES
    + STREAMING_SWITCH_FEATURES
    + STREAMING_CONTROL_FEATURES
)


def _indicators(match_dict: Dict[str, Any]) -> Dict[str, Any]:
    return {k: v for k, v in match_dict.items() if k in _INDICATOR_KEYS}


class StreamingFeatureState:
    """Per-instance incremental feature tables for the streaming path."""

    def __init__(self, stale_after: float = 60.0) -> None:
        self.flow_state = FlowStateTable(stale_after=stale_after)
        self.variation = VariationTracker(stale_after=2 * stale_after)
        self._control_counters: Dict[int, Dict[str, int]] = {}

    # -- per-event folds ----------------------------------------------------

    def fold_packet_in(
        self, dpid: int, message: PacketIn, now: float
    ) -> tuple:
        """Fold a PACKET_IN; returns ``(indicators, fields)``."""
        indicators = _indicators(message.headers)
        fields = self.flow_state.observe_flow(dpid, indicators, now)
        fields["FLOW_PACKET_COUNT"] = 0.0
        fields["FLOW_BYTE_COUNT"] = float(message.total_len)
        counters = self._control_counters.setdefault(dpid, {})
        counters["packet_in"] = counters.get("packet_in", 0) + 1
        return indicators, fields

    def fold_flow_removed(
        self, dpid: int, message: FlowRemoved, now: float
    ) -> tuple:
        """Fold a FLOW_REMOVED: final sample + state eviction."""
        indicators = _indicators(message.match.to_dict())
        fields = protocol.removed_flow_fields(message)
        fields.update(combination.flow_fields(fields))
        fields.update(
            self.flow_state.observe_flow(
                dpid, indicators, now, fields.get("FLOW_PACKET_COUNT", 0.0)
            )
        )
        entity = (
            dpid,
            "flow",
            tuple(sorted(indicators.items())),
            message.priority,
            message.cookie,
        )
        fields.update(self.variation.diff(entity, fields, now))
        self.flow_state.remove_flow(dpid, indicators)
        self.variation.forget(entity)
        counters = self._control_counters.setdefault(dpid, {})
        counters["flow_removed"] = counters.get("flow_removed", 0) + 1
        return indicators, fields

    def fold_flow_stats_entry(
        self, dpid: int, entry: FlowStatsEntry, now: float
    ) -> tuple:
        """Fold one flow-stats entry from an Athena-marked stats reply."""
        indicators = _indicators(entry.match.to_dict())
        fields = protocol.flow_fields(entry)
        fields.update(combination.flow_fields(fields))
        fields.update(
            self.flow_state.observe_flow(
                dpid, indicators, now, fields["FLOW_PACKET_COUNT"]
            )
        )
        entity = (
            dpid,
            "flow",
            tuple(sorted(indicators.items())),
            entry.priority,
            entry.cookie,
        )
        fields.update(self.variation.diff(entity, fields, now))
        return indicators, fields

    # -- read-only snapshots -------------------------------------------------

    def switch_fields(self, dpid: int) -> Dict[str, float]:
        """Non-resetting switch-scope snapshot (safe to read per event)."""
        return self.flow_state.switch_snapshot(dpid)

    def control_fields(self, dpid: int) -> Dict[str, float]:
        """Control-scope counters folded so far for one switch."""
        counters = self._control_counters.get(dpid, {})
        all_fields = protocol.control_counter_fields(counters)
        return {name: all_fields[name] for name in STREAMING_CONTROL_FEATURES}

    def collect_garbage(self, now: float) -> int:
        """Evict stale flow/variation entries; returns eviction count."""
        return self.flow_state.collect_garbage(now) + self.variation.collect_garbage(now)
