"""Batch-vs-streaming equivalence scenarios.

Each scenario drives the *same* stack and traffic as the chaos
conformance scenarios (``repro.chaos.scenarios``), but runs detection
through both paths simultaneously — the batch DetectorManager pipeline
and the streaming pipeline — and reports both recalls so the
equivalence suite can assert parity within
:data:`STREAMING_RECALL_TOLERANCE` (documented in docs/STREAMING.md).

Determinism contract: two calls with the same ``(scenario, seed)``
produce byte-identical ``alert_stream_json``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.errors import AthenaError

#: Maximum the streaming path's recall may trail the batch path's on the
#: same scenario (documented in docs/STREAMING.md).
STREAMING_RECALL_TOLERANCE = 0.25

STREAMING_SCENARIOS = ("portscan", "ddos")

#: Event kinds whose records correspond to the batch query population
#: (``feature_scope == flow && FLOW_PACKET_COUNT > 0``): stats samples and
#: final FLOW_REMOVED samples, not zero-count PACKET_IN observations.
_SAMPLED_KINDS = ("flow_stats", "flow_removed")


@dataclass
class StreamingScenarioResult:
    """Outcome of one dual-path (batch + streaming) scenario run."""

    scenario: str
    seed: int
    attacker_ip: str
    batch_recall: float
    streaming_recall: float
    batch_detected: bool
    streaming_detected: bool
    batch_flagged: List[str]
    streaming_flagged: List[str]
    events_processed: int
    alerts_emitted: int
    alert_stream_json: str
    alert_stream_digest: str
    detector_summaries: List[Dict[str, Any]] = field(default_factory=list)


def _sampled(event) -> bool:
    return (
        event.kind in _SAMPLED_KINDS
        and event.fields.get("FLOW_PACKET_COUNT", 0.0) > 0
    )


def run_streaming_scenario(
    scenario: str, seed: int = 0, duration: float = 12.0
) -> StreamingScenarioResult:
    """Run one scenario through the batch and streaming paths together."""
    if scenario not in STREAMING_SCENARIOS:
        raise AthenaError(
            f"unknown streaming scenario {scenario!r}; "
            f"known: {', '.join(STREAMING_SCENARIOS)}"
        )
    runner = _run_portscan if scenario == "portscan" else _run_ddos
    return runner(seed, duration)


def _streaming_recall(detectors, sampled_events, attacker_ip: str):
    """Recall over the batch-comparable event population.

    ``sampled_events`` is the list of ``(ip_src, sim_time)`` pairs of
    sampled flow events; an event counts as *hit* when an alert for the
    attacker exists at the same sim time (cooldown 0 ⇒ one alert per
    positive verdict, so this is an exact per-event join).
    """
    alert_times = {
        (alert["source"], alert["sim_time"], alert["kind"])
        for alert in detectors.alerts
    }
    attacker_events = [e for e in sampled_events if e[0] == attacker_ip]
    hits = [e for e in attacker_events if (e[0], e[1], e[2]) in alert_times]
    recall = len(hits) / len(attacker_events) if attacker_events else 0.0
    return recall, len(attacker_events)


def _run_portscan(seed: int, horizon: float) -> StreamingScenarioResult:
    """Port scan: batch threshold vs streaming sliding-window detector."""
    from repro.chaos.scenarios import _build_stack
    from repro.core import GenerateQuery
    from repro.core.algorithm import GenerateAlgorithm
    from repro.core.preprocessor import GeneratePreprocessor
    from repro.ml.online import SlidingWindowDetector
    from repro.workloads.flows import FlowSpec

    topo, athena, schedule = _build_stack()
    runtime = athena.enable_streaming()
    runtime.detectors.register_detector(
        "portscan_fanout",
        SlidingWindowDetector(column=0, threshold=10.0, window=16, min_hits=1),
        features=["SRC_FLOW_FANOUT"],
        cooldown=0.0,
    )
    sampled_events: List[tuple] = []

    def record(event):
        if _sampled(event):
            sampled_events.append(
                (event.indicators.get("ip_src"), event.time, event.kind)
            )

    runtime.pipeline.add_sink(record)

    scanner = topo.network.hosts["h1"]
    normal = topo.network.hosts["h2"]
    for port in range(30):
        schedule.add_flow(
            FlowSpec(src_host="h1", dst_host="h5", sport=52000 + port,
                     dport=1000 + port, packet_size=64, rate_pps=4.0,
                     start=1.0 + port * 0.05, duration=1.5)
        )
    schedule.add_flow(
        FlowSpec(src_host="h2", dst_host="h6", sport=33000, dport=80,
                 rate_pps=10.0, start=1.0, duration=6.0, bidirectional=True)
    )
    topo.network.sim.run(until=horizon)

    # Batch path: identical to the chaos portscan detection round.
    query = GenerateQuery("feature_scope == flow && FLOW_PACKET_COUNT > 0")
    preprocessor = GeneratePreprocessor(
        normalization=None, features=["SRC_FLOW_FANOUT"]
    )
    algorithm = GenerateAlgorithm("threshold", column=0, threshold=10.0)
    model = athena.northbound.GenerateDetectionModel(query, preprocessor, algorithm)
    documents = athena.northbound.RequestFeatures(query)
    matrix, _, docs = model.preprocessor.transform(documents)
    predictions = model.estimator.predict(matrix)
    batch_flagged = sorted(
        {
            doc.get("ip_src")
            for doc, verdict in zip(docs, predictions)
            if verdict and doc.get("ip_src")
        }
    )
    scanner_docs = [d for d in docs if d.get("ip_src") == scanner.ip]
    scanner_hits = [
        d
        for d, verdict in zip(docs, predictions)
        if verdict and d.get("ip_src") == scanner.ip
    ]
    batch_recall = len(scanner_hits) / len(scanner_docs) if scanner_docs else 0.0

    streaming_recall, _ = _streaming_recall(
        runtime.detectors, sampled_events, scanner.ip
    )
    streaming_flagged = [
        str(source) for source in runtime.detectors.flagged_sources()
    ]
    return StreamingScenarioResult(
        scenario="portscan",
        seed=seed,
        attacker_ip=scanner.ip,
        batch_recall=batch_recall,
        streaming_recall=streaming_recall,
        batch_detected=scanner.ip in batch_flagged
        and normal.ip not in batch_flagged,
        streaming_detected=scanner.ip in streaming_flagged
        and normal.ip not in streaming_flagged,
        batch_flagged=batch_flagged,
        streaming_flagged=streaming_flagged,
        events_processed=runtime.pipeline.events_processed,
        alerts_emitted=len(runtime.detectors.alerts),
        alert_stream_json=runtime.detectors.alert_stream_json(),
        alert_stream_digest=runtime.detectors.alert_stream_digest(),
        detector_summaries=runtime.detectors.summaries(),
    )


def _run_ddos(seed: int, horizon: float) -> StreamingScenarioResult:
    """DDoS: batch K-Means (offline-trained) vs online NB warmed on the
    same labelled dataset, scoring live flow-stats events."""
    from repro.chaos.scenarios import _build_stack
    from repro.core import GenerateQuery
    from repro.core.algorithm import GenerateAlgorithm
    from repro.core.preprocessor import GeneratePreprocessor
    from repro.ml.online import OnlineGaussianNB
    from repro.workloads.ddos import DDoSDatasetGenerator, DDoSDatasetSpec
    from repro.workloads.flows import FlowSpec

    features = [
        "FLOW_PACKET_COUNT",
        "FLOW_BYTE_PER_PACKET",
        "FLOW_PACKET_PER_DURATION",
        "PAIR_FLOW",
    ]
    topo, athena, schedule = _build_stack()
    attacker = topo.network.hosts["h2"]
    documents = DDoSDatasetGenerator(DDoSDatasetSpec(scale=0.0005)).generate()

    # Streaming path: online NB warmed on the labelled dataset (raw
    # features — NB normalises through its own per-class statistics),
    # then frozen (absorb=False) so live traffic cannot drift the model.
    learner = OnlineGaussianNB()
    for doc in documents:
        learner.partial_fit(
            [doc.get(name, 0.0) for name in features], doc.get("label", 0)
        )
    runtime = athena.enable_streaming()
    runtime.detectors.register_detector(
        "ddos_online_nb",
        learner,
        features=features,
        cooldown=0.0,
        absorb=False,
        kinds=_SAMPLED_KINDS,
    )
    sampled_events: List[tuple] = []

    def record(event):
        if _sampled(event):
            sampled_events.append(
                (event.indicators.get("ip_src"), event.time, event.kind)
            )

    runtime.pipeline.add_sink(record)

    # Batch path: K-Means trained offline, validated online per feature.
    preprocessor = GeneratePreprocessor(
        normalization="minmax", marking="label", features=features
    )
    model = athena.detector_manager.generate_detection_model(
        GenerateQuery(),
        preprocessor,
        GenerateAlgorithm("kmeans", k=6, max_iterations=15, runs=2, seed=1),
        documents=documents,
    )
    live_query = GenerateQuery("feature_scope == flow && FLOW_PACKET_COUNT > 0")
    verdicts: List = []
    athena.northbound.add_online_validator(
        model.preprocessor,
        model,
        lambda feature, verdict: verdicts.append(
            (feature.indicators.get("ip_src"), verdict)
        ),
        query=live_query,
    )

    schedule.add_flow(
        FlowSpec(src_host="h2", dst_host="h6", sport=50001, dport=80,
                 packet_size=64, rate_pps=150.0, start=1.0,
                 duration=max(6.0, horizon - 4.0))
    )
    schedule.add_flow(
        FlowSpec(src_host="h1", dst_host="h5", rate_pps=10.0, start=1.0,
                 duration=5.0, bidirectional=True)
    )
    topo.network.sim.run(until=horizon)

    attacker_samples = [v for ip, v in verdicts if ip == attacker.ip]
    attacker_alerts = [v for v in attacker_samples if v]
    batch_recall = (
        len(attacker_alerts) / len(attacker_samples) if attacker_samples else 0.0
    )
    batch_flagged = sorted({ip for ip, v in verdicts if v and ip})

    streaming_recall, _ = _streaming_recall(
        runtime.detectors, sampled_events, attacker.ip
    )
    streaming_flagged = [
        str(source) for source in runtime.detectors.flagged_sources()
    ]
    return StreamingScenarioResult(
        scenario="ddos",
        seed=seed,
        attacker_ip=attacker.ip,
        batch_recall=batch_recall,
        streaming_recall=streaming_recall,
        batch_detected=attacker.ip in batch_flagged,
        streaming_detected=attacker.ip in streaming_flagged,
        batch_flagged=batch_flagged,
        streaming_flagged=streaming_flagged,
        events_processed=runtime.pipeline.events_processed,
        alerts_emitted=len(runtime.detectors.alerts),
        alert_stream_json=runtime.detectors.alert_stream_json(),
        alert_stream_digest=runtime.detectors.alert_stream_digest(),
        detector_summaries=runtime.detectors.summaries(),
    )
