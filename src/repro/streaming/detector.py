"""Streaming detector manager: per-event scoring, bounded-latency alerts.

The hot path for every stream event is strictly:

1. build the detector's feature vector from the event's fields
   (missing names read as 0.0 — catalog names are validated once, at
   registration, against FEATURE_CATALOG);
2. ``predict_event`` on the online learner (O(d) or O(trees·depth));
3. ``partial_fit`` the same observation (unsupervised absorption);
4. on a positive verdict outside the per-source cooldown, append an
   alert.

No model is ever retrained on this path; periodic maintenance
(:meth:`refresh`) runs off-path, scheduled on the sim clock by
``AthenaDeployment.enable_streaming``.  Alerts carry only sim-clock
timestamps, so two identical runs produce byte-identical alert
streams — :meth:`alert_stream_json` is the determinism contract the
equivalence suite asserts.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.feature_format import FeatureScope
from repro.core.features.catalog import FEATURE_CATALOG
from repro.errors import AthenaError
from repro.ml.online import OnlineLearner
from repro.streaming.pipeline import StreamEvent
from repro.telemetry import get_telemetry


@dataclass
class _Detector:
    """One registered online detector."""

    name: str
    learner: OnlineLearner
    features: List[str]
    scope: FeatureScope
    cooldown: float
    warmup: int
    absorb: bool
    kinds: Optional[tuple]
    events_seen: int = 0
    alerts_emitted: int = 0
    #: source key -> sim time of the last alert (cooldown state).
    last_alert: Dict[Any, float] = field(default_factory=dict)


class StreamingAlert(dict):
    """An alert record (a dict, so it serialises like reaction history)."""


class StreamingDetectorManager:
    """Scores stream events through registered online learners."""

    def __init__(self) -> None:
        self._detectors: Dict[str, _Detector] = {}
        self.alerts: List[StreamingAlert] = []
        self.refreshes = 0
        registry = get_telemetry().registry
        self._metric_alerts = registry.counter(
            "athena_streaming_alerts_total",
            "Alerts emitted by streaming detectors.",
            labelnames=("detector",),
        )
        self._metric_scored = registry.counter(
            "athena_streaming_scored_total",
            "Stream events scored across all detectors.",
        )

    # -- registration -------------------------------------------------------

    def register_detector(
        self,
        name: str,
        learner: OnlineLearner,
        features: List[str],
        scope: FeatureScope = FeatureScope.FLOW,
        cooldown: float = 1.0,
        warmup: int = 0,
        absorb: bool = True,
        kinds: Optional[tuple] = None,
    ) -> None:
        """Register an online learner over a list of catalog feature names.

        ``warmup`` events are absorbed before any verdict is emitted;
        ``absorb=False`` freezes the model (score only, e.g. a learner
        warmed offline on a labelled dataset); ``kinds`` restricts the
        detector to a subset of event kinds (e.g. only sampled
        ``flow_stats``/``flow_removed`` records, skipping the zero-count
        ``packet_in`` observations).
        """
        if name in self._detectors:
            raise AthenaError(f"streaming detector {name!r} already registered")
        if not features:
            raise AthenaError("a streaming detector needs at least one feature")
        FEATURE_CATALOG.validate(features)
        self._detectors[name] = _Detector(
            name=name,
            learner=learner,
            features=list(features),
            scope=scope,
            cooldown=cooldown,
            warmup=warmup,
            absorb=absorb,
            kinds=tuple(kinds) if kinds is not None else None,
        )

    def unregister_detector(self, name: str) -> None:
        self._detectors.pop(name, None)

    @property
    def detector_count(self) -> int:
        return len(self._detectors)

    # -- hot path -----------------------------------------------------------

    @staticmethod
    def _source_key(event: StreamEvent) -> Any:
        return (
            event.indicators.get("ip_src")
            or event.indicators.get("eth_src")
            or event.dpid
        )

    def on_event(self, event: StreamEvent) -> None:
        """Score one stream event through every matching detector."""
        for detector in self._detectors.values():
            if detector.scope is not event.scope:
                continue
            if detector.kinds is not None and event.kind not in detector.kinds:
                continue
            detector.events_seen += 1
            self._metric_scored.inc()
            vector = [
                event.fields.get(name, 0.0) for name in detector.features
            ]
            if detector.events_seen <= detector.warmup:
                if detector.absorb:
                    detector.learner.partial_fit(vector)
                continue
            verdict = detector.learner.predict_event(vector)
            score = detector.learner.score_event(vector)
            if detector.absorb:
                detector.learner.partial_fit(vector)
            if not verdict:
                continue
            source = self._source_key(event)
            last = detector.last_alert.get(source)
            if last is not None and event.time - last < detector.cooldown:
                continue
            detector.last_alert[source] = event.time
            detector.alerts_emitted += 1
            self._metric_alerts.labels(detector=detector.name).inc()
            self.alerts.append(
                StreamingAlert(
                    detector=detector.name,
                    kind=event.kind,
                    sim_time=event.time,
                    dpid=event.dpid,
                    instance_id=event.instance_id,
                    source=source,
                    score=round(float(score), 9),
                    features={
                        name: event.fields.get(name, 0.0)
                        for name in detector.features
                    },
                )
            )

    # -- off-path maintenance ------------------------------------------------

    def refresh(self) -> None:
        """Periodic model maintenance (window swaps etc.) — off the hot path."""
        for detector in self._detectors.values():
            detector.learner.refresh()
        self.refreshes += 1

    # -- read views ----------------------------------------------------------

    def alert_stream_json(self) -> str:
        """Canonical JSON of the alert stream (byte-identical across
        identical same-seed runs — the determinism contract)."""
        return json.dumps(list(self.alerts), sort_keys=True)

    def alert_stream_digest(self) -> str:
        return hashlib.sha256(
            self.alert_stream_json().encode("utf-8")
        ).hexdigest()

    def flagged_sources(self, detector: Optional[str] = None) -> List[Any]:
        """Distinct alert sources, optionally for one detector."""
        sources = {
            alert["source"]
            for alert in self.alerts
            if detector is None or alert["detector"] == detector
        }
        return sorted(sources, key=str)

    def summaries(self) -> List[Dict[str, Any]]:
        return [
            {
                "name": d.name,
                "algorithm": type(d.learner).__name__,
                "features": list(d.features),
                "scope": d.scope.value,
                "events_seen": d.events_seen,
                "alerts_emitted": d.alerts_emitted,
                "cooldown": d.cooldown,
                "absorbing": d.absorb,
            }
            for d in self._detectors.values()
        ]
