"""The streaming pipeline: EventBus events → stream events → detectors.

A :class:`StreamingPipeline` subscribes to every controller instance's
bus (PacketIn, FlowRemoved, Athena-marked stats replies) and folds each
event through :class:`~repro.streaming.state.StreamingFeatureState`
into a :class:`StreamEvent` — one flat record carrying the event's
origin, sim timestamp, match indicators, and catalog-named feature
fields.  Subscribed sinks (normally a
:class:`~repro.streaming.detector.StreamingDetectorManager`) receive
each stream event synchronously; the whole fold+detect path is O(d)
per event and instrumented with a wall-clock latency histogram.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List

from repro.controller.events import (
    FlowRemovedEvent,
    PacketInEvent,
    StatsEvent,
)
from repro.core.feature_format import FeatureScope
from repro.streaming.state import StreamingFeatureState
from repro.openflow.messages import FlowStatsReply
from repro.telemetry import Stopwatch, get_telemetry


@dataclass
class StreamEvent:
    """One folded event on its way to the online detectors."""

    kind: str  # "packet_in" | "flow_removed" | "flow_stats"
    scope: FeatureScope
    dpid: int
    instance_id: int
    time: float  # sim clock
    indicators: Dict[str, Any] = field(default_factory=dict)
    fields: Dict[str, float] = field(default_factory=dict)


StreamSink = Callable[[StreamEvent], None]


class StreamingPipeline:
    """Event-driven feature folding for one Athena deployment."""

    def __init__(self, stale_after: float = 60.0) -> None:
        self._stale_after = stale_after
        #: instance_id -> its private incremental feature state.
        self.states: Dict[int, StreamingFeatureState] = {}
        self._sinks: List[StreamSink] = []
        self._attached: List = []  # (bus, event_type, handler) triples
        self.events_processed = 0
        self.events_by_kind: Dict[str, int] = {
            "packet_in": 0, "flow_removed": 0, "flow_stats": 0
        }
        registry = get_telemetry().registry
        events = registry.counter(
            "athena_streaming_events_total",
            "Events folded by the streaming pipeline, by kind.",
            labelnames=("kind",),
        )
        self._metric_events = {
            kind: events.labels(kind=kind) for kind in self.events_by_kind
        }
        self._latency = registry.histogram(
            "athena_streaming_event_seconds",
            "Wall-clock event→verdict latency of the streaming hot path.",
        )

    # -- wiring -------------------------------------------------------------

    def add_sink(self, sink: StreamSink) -> None:
        """Register a consumer of stream events (e.g. a detector manager)."""
        if sink not in self._sinks:
            self._sinks.append(sink)

    def attach_instance(self, instance_id: int, bus) -> None:
        """Subscribe to one controller instance's event bus.

        Subscriptions added mid-dispatch take effect from the *next*
        event (the EventBus defers them deterministically).
        """
        if instance_id in self.states:
            return
        self.states[instance_id] = StreamingFeatureState(
            stale_after=self._stale_after
        )

        def on_packet_in(event, _iid=instance_id):
            self._on_packet_in(_iid, event)

        def on_flow_removed(event, _iid=instance_id):
            self._on_flow_removed(_iid, event)

        def on_stats(event, _iid=instance_id):
            self._on_stats(_iid, event)

        for event_type, handler in (
            (PacketInEvent, on_packet_in),
            (FlowRemovedEvent, on_flow_removed),
            (StatsEvent, on_stats),
        ):
            bus.subscribe(event_type, handler)
            self._attached.append((bus, event_type, handler))

    def attach(self, deployment) -> None:
        """Subscribe to every instance of an AthenaDeployment."""
        for instance in deployment.instances:
            self.attach_instance(
                instance.instance_id, instance.controller.bus
            )

    def detach(self) -> None:
        for bus, event_type, handler in self._attached:
            bus.unsubscribe(event_type, handler)
        self._attached.clear()

    # -- event handlers -----------------------------------------------------

    def _dispatch(self, event: StreamEvent) -> None:
        self.events_processed += 1
        self.events_by_kind[event.kind] += 1
        self._metric_events[event.kind].inc()
        for sink in self._sinks:
            sink(event)

    def _on_packet_in(self, instance_id: int, event: PacketInEvent) -> None:
        watch = Stopwatch()
        state = self.states[instance_id]
        indicators, fields = state.fold_packet_in(
            event.dpid, event.message, event.time
        )
        self._dispatch(
            StreamEvent(
                kind="packet_in",
                scope=FeatureScope.FLOW,
                dpid=event.dpid,
                instance_id=instance_id,
                time=event.time,
                indicators=indicators,
                fields=fields,
            )
        )
        self._latency.observe(watch.elapsed())

    def _on_flow_removed(self, instance_id: int, event: FlowRemovedEvent) -> None:
        watch = Stopwatch()
        state = self.states[instance_id]
        indicators, fields = state.fold_flow_removed(
            event.dpid, event.message, event.time
        )
        self._dispatch(
            StreamEvent(
                kind="flow_removed",
                scope=FeatureScope.FLOW,
                dpid=event.dpid,
                instance_id=instance_id,
                time=event.time,
                indicators=indicators,
                fields=fields,
            )
        )
        self._latency.observe(watch.elapsed())

    def _on_stats(self, instance_id: int, event: StatsEvent) -> None:
        # Only Athena-requested replies carry the sampling semantics the
        # feature definitions assume (mirrors SouthboundElement._on_stats).
        if not event.athena_marked:
            return
        message = event.message
        if not isinstance(message, FlowStatsReply):
            return
        state = self.states[instance_id]
        for entry in message.entries:
            watch = Stopwatch()
            indicators, fields = state.fold_flow_stats_entry(
                event.dpid, entry, event.time
            )
            self._dispatch(
                StreamEvent(
                    kind="flow_stats",
                    scope=FeatureScope.FLOW,
                    dpid=event.dpid,
                    instance_id=instance_id,
                    time=event.time,
                    indicators=indicators,
                    fields=fields,
                )
            )
            self._latency.observe(watch.elapsed())

    # -- snapshots ----------------------------------------------------------

    def switch_fields(self, instance_id: int, dpid: int) -> Dict[str, float]:
        """Current switch-scope snapshot for one instance's view of a switch."""
        return self.states[instance_id].switch_fields(dpid)

    def collect_garbage(self, now: float) -> int:
        return sum(s.collect_garbage(now) for s in self.states.values())

    def summary(self) -> Dict[str, Any]:
        return {
            "events_processed": self.events_processed,
            "events_by_kind": dict(self.events_by_kind),
            "instances": sorted(self.states),
        }
