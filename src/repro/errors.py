"""Exception hierarchy shared by every subsystem in the reproduction.

Keeping the hierarchy in one module lets callers catch either a precise
failure (``QueryError``) or anything raised by the stack (``ReproError``).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class SimulationError(ReproError):
    """The discrete-event kernel was used incorrectly (e.g. past-time event)."""


class OpenFlowError(ReproError):
    """Malformed OpenFlow message, match, or action."""


class DataPlaneError(ReproError):
    """Invalid data-plane operation (unknown port, duplicate link, ...)."""


class ControllerError(ReproError):
    """Controller-side failure (unknown switch, mastership violation, ...)."""


class DatabaseError(ReproError):
    """Distributed document-store failure."""


class ShardDownError(DatabaseError):
    """An operation was routed to a shard that is currently down."""

    def __init__(self, node_id: int) -> None:
        super().__init__(f"shard {node_id} is down")
        self.node_id = node_id


class AllShardsDownError(DatabaseError):
    """Every shard in the cluster is down — no operation can be served."""

    def __init__(self, message: str = "all shards are down") -> None:
        super().__init__(message)


class QueryError(DatabaseError):
    """A query document or Athena query string could not be interpreted."""


class ComputeError(ReproError):
    """Compute-cluster job submission or execution failure."""


class MLError(ReproError):
    """Machine-learning configuration or fitting failure."""


class AthenaError(ReproError):
    """Athena framework misuse (bad NB API parameters, unknown feature, ...)."""


class FeatureError(AthenaError):
    """An unknown or malformed Athena feature was requested."""


class ReactionError(AthenaError):
    """A mitigation action could not be enforced on the data plane."""


class TelemetryError(ReproError):
    """Telemetry misuse (metric type conflict, bad label set, ...)."""


class ChaosError(ReproError):
    """A fault plan is malformed or targets something that does not exist."""
