"""Exception hierarchy shared by every subsystem in the reproduction.

Keeping the hierarchy in one module lets callers catch either a precise
failure (``QueryError``) or anything raised by the stack (``ReproError``).

Every class carries a stable machine-readable ``code`` — the contract the
northbound serving tier's error envelopes expose to HTTP clients
(docs/API.md "Error envelope").  Codes form a dotted hierarchy mirroring
the class hierarchy (``db.shard_down`` is a ``db`` failure), so clients
can match on exact codes or on prefixes.  Codes are API surface: renaming
one is a breaking change, and ``tests/test_nb_api.py`` asserts they stay
unique and hierarchy-consistent.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""

    #: Stable machine-readable identifier (see docs/API.md).
    code = "repro"


class SimulationError(ReproError):
    """The discrete-event kernel was used incorrectly (e.g. past-time event)."""

    code = "sim"


class OpenFlowError(ReproError):
    """Malformed OpenFlow message, match, or action."""

    code = "openflow"


class DataPlaneError(ReproError):
    """Invalid data-plane operation (unknown port, duplicate link, ...)."""

    code = "dataplane"


class ControllerError(ReproError):
    """Controller-side failure (unknown switch, mastership violation, ...)."""

    code = "controller"


class DatabaseError(ReproError):
    """Distributed document-store failure."""

    code = "db"


class ShardDownError(DatabaseError):
    """An operation was routed to a shard that is currently down."""

    code = "db.shard_down"

    def __init__(self, node_id: int) -> None:
        super().__init__(f"shard {node_id} is down")
        self.node_id = node_id


class AllShardsDownError(DatabaseError):
    """Every shard in the cluster is down — no operation can be served."""

    code = "db.all_shards_down"

    def __init__(self, message: str = "all shards are down") -> None:
        super().__init__(message)


class QueryError(DatabaseError):
    """A query document or Athena query string could not be interpreted."""

    code = "db.query"


class ComputeError(ReproError):
    """Compute-cluster job submission or execution failure."""

    code = "compute"


class MLError(ReproError):
    """Machine-learning configuration or fitting failure."""

    code = "ml"


class AthenaError(ReproError):
    """Athena framework misuse (bad NB API parameters, unknown feature, ...)."""

    code = "athena"


class FeatureError(AthenaError):
    """An unknown or malformed Athena feature was requested."""

    code = "athena.feature"


class ReactionError(AthenaError):
    """A mitigation action could not be enforced on the data plane."""

    code = "athena.reaction"


class TelemetryError(ReproError):
    """Telemetry misuse (metric type conflict, bad label set, ...)."""

    code = "telemetry"


class ChaosError(ReproError):
    """A fault plan is malformed or targets something that does not exist."""

    code = "chaos"
