"""Scenario 2: Link Flooding Attack detection and mitigation.

The Spiffy-equivalent service (Table VII) built purely on Athena features:

* **link congestion** — the built-in ``PORT_RX_BYTES_VAR`` volume-variation
  feature crossing a threshold marks a congested port (Spiffy needed SNMP);
* **rate change** — per-flow ``FLOW_BYTE_COUNT_VAR`` before and during a
  temporary bandwidth expansion (TBE) distinguishes adaptive legitimate
  TCP senders from non-adaptive bots (Spiffy needed OpenSketch switches);
* **traffic engineering / mitigation** — suspicious sources are blocked via
  the Reactor on any switch, covering insider threats.

The detection logic lives in the event handler the app registers with
``AddEventHandler``, exactly as the paper describes.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Set, Tuple

from repro.core.app import AthenaApp
from repro.core.feature_format import AthenaFeature
from repro.core.query import GenerateQuery
from repro.core.reactions import BlockReaction


class LFAMitigationApp(AthenaApp):
    """Threshold + TBE-based LFA detector and mitigator."""

    def __init__(
        self,
        name: str = "lfa-mitigation",
        congestion_threshold_bytes: float = 200_000.0,
        tbe_adaptation_ratio: float = 1.3,
        auto_block: bool = True,
    ) -> None:
        super().__init__(name)
        #: PORT_RX_BYTES_VAR above this marks the port congested.
        self.congestion_threshold_bytes = congestion_threshold_bytes
        #: Legitimate flows grow at least this factor under TBE.
        self.tbe_adaptation_ratio = tbe_adaptation_ratio
        self.auto_block = auto_block
        self.congested_ports: List[Tuple[int, int, float]] = []
        self.suspicious_sources: List[str] = []
        self._flow_rate_history: Dict[tuple, List[float]] = defaultdict(list)
        self._tbe_active: Set[Tuple[int, int]] = set()
        self._blocked: Set[str] = set()
        self._handler_ids: List[int] = []

    # -- lifecycle -----------------------------------------------------------

    def on_attach(self) -> None:
        """Register the LFA event handlers (the paper's ~25-line setup)."""
        q_ports = GenerateQuery("feature_scope == port && PORT_RX_BYTES_VAR > 0")
        self._handler_ids.append(
            self.nb.AddEventHandler(q_ports, self._port_event_handler)
        )
        q_flows = GenerateQuery("feature_scope == flow && FLOW_BYTE_COUNT_VAR > 0")
        self._handler_ids.append(
            self.nb.AddEventHandler(q_flows, self._flow_event_handler)
        )

    def on_detach(self) -> None:
        for handler_id in self._handler_ids:
            self.nb.remove_event_handler(handler_id)
        self._handler_ids.clear()

    # -- detection logic (the custom Event_Handler body) ---------------------------

    def _port_event_handler(self, feature: AthenaFeature) -> None:
        """Lightweight threshold-based congestion detection per port."""
        variation = feature.fields.get("PORT_RX_BYTES_VAR", 0.0)
        if variation < self.congestion_threshold_bytes:
            return
        key = (feature.switch_id, feature.port_no or 0)
        self.congested_ports.append((key[0], key[1], feature.timestamp))
        if key not in self._tbe_active:
            self._tbe_active.add(key)
            self._expand_bandwidth(feature.switch_id, feature.port_no)

    def _flow_event_handler(self, feature: AthenaFeature) -> None:
        """TBE-based tracker: flows that ignore extra bandwidth are bots."""
        key = (
            feature.switch_id,
            feature.indicators.get("ip_src"),
            feature.indicators.get("ip_dst"),
            feature.indicators.get("tcp_dst"),
        )
        rate = feature.fields.get("FLOW_BYTE_COUNT_VAR", 0.0)
        history = self._flow_rate_history[key]
        history.append(rate)
        if len(history) > 8:
            history.pop(0)
        if not self._tbe_active or len(history) < 4:
            return
        before = sum(history[:-2]) / max(1, len(history) - 2)
        after = sum(history[-2:]) / 2.0
        ip_src = feature.indicators.get("ip_src")
        if (
            ip_src
            and before > 0
            and after < before * self.tbe_adaptation_ratio
            and ip_src not in self._blocked
        ):
            self.suspicious_sources.append(ip_src)
            if self.auto_block:
                self.nb.Reactor(None, BlockReaction(target_ips=[ip_src]))
                self._blocked.add(ip_src)

    # -- mitigation helpers -------------------------------------------------------------

    def _expand_bandwidth(self, dpid: int, port_no: Optional[int]) -> None:
        """Temporary bandwidth expansion on the congested link.

        With OpenFlow switches the expansion is emulated by raising the link
        capacity in the data plane (the operator's TE knob); legitimate TCP
        senders grow into it, bots do not.
        """
        network = self.deployment.cluster.network
        for link in network.links:
            for endpoint in link.endpoints():
                point = endpoint.switch_point
                if point and point.dpid == dpid and (
                    port_no is None or point.port == port_no
                ):
                    link.capacity_bps *= 2.0
                    return

    def block_suspicious(self) -> int:
        """Explicitly block every currently suspicious source."""
        pending = [ip for ip in self.suspicious_sources if ip not in self._blocked]
        if not pending:
            return 0
        rules = self.nb.Reactor(None, BlockReaction(target_ips=pending))
        self._blocked.update(pending)
        return rules
