"""The paper's three use-case applications (Section V).

* :mod:`repro.apps.ddos` — the large-scale DDoS attack detector
  (Scenario 1), the paper's flagship evaluation workload;
* :mod:`repro.apps.lfa` — Link Flooding Attack detection and mitigation
  (Scenario 2), the Spiffy-equivalent built without custom switches;
* :mod:`repro.apps.nae` — the Network Application Effectiveness monitor
  (Scenario 3), detecting the novel SLA-violation anomaly the paper
  introduces.
"""

from repro.apps.control_anomaly import ControlPlaneAnomalyApp
from repro.apps.ddos import DDoSDetectorApp, ddos_detector_application
from repro.apps.lfa import LFAMitigationApp
from repro.apps.nae import NAEMonitorApp

__all__ = [
    "ControlPlaneAnomalyApp",
    "DDoSDetectorApp",
    "ddos_detector_application",
    "LFAMitigationApp",
    "NAEMonitorApp",
]
