"""Scenario 3: the Network Application Effectiveness (NAE) monitor.

Registers an event handler for flow features on the monitored switches
("Match DPID == (6 or 3)"), aggregates packet counts per application,
switch and time bucket, and checks the user-defined SLA — traffic should
be distributed evenly per switch.  Violations raise operator alerts and the
aggregated series renders through ShowResults (Figure 9).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Dict, List, Optional, Tuple

from repro.core.app import AthenaApp
from repro.core.feature_format import AthenaFeature
from repro.core.query import GenerateQuery


class NAEMonitorApp(AthenaApp):
    """SLA-violation detector for competing network applications."""

    def __init__(
        self,
        name: str = "nae-monitor",
        monitored_switches: Tuple[int, int] = (6, 3),
        bucket_seconds: float = 5.0,
        sla_imbalance_threshold: float = 0.75,
        min_bucket_packets: float = 200.0,
    ) -> None:
        super().__init__(name)
        self.monitored_switches = monitored_switches
        self.bucket_seconds = bucket_seconds
        #: SLA: max share of traffic one switch may carry (0.5 = perfectly even).
        self.sla_imbalance_threshold = sla_imbalance_threshold
        #: Don't judge a bucket until it has seen this much traffic.
        self.min_bucket_packets = min_bucket_packets
        #: (bucket, switch_id, app_id) -> packet count delta sum.
        self.series: Dict[Tuple[int, int, str], float] = defaultdict(float)
        self.violations: List[Dict[str, Any]] = []
        self._handler_id: Optional[int] = None
        self._current_bucket: Optional[int] = None

    # -- lifecycle (the paper's ~30-line monitor) -----------------------------

    def on_attach(self) -> None:
        a, b = self.monitored_switches
        query = GenerateQuery(
            f"feature_scope == flow && (switch_id == {a} || switch_id == {b})"
        )
        self._handler_id = self.nb.AddEventHandler(query, self._event_handler)

    def on_detach(self) -> None:
        if self._handler_id is not None:
            self.nb.remove_event_handler(self._handler_id)
            self._handler_id = None

    # -- event handling ----------------------------------------------------------

    def _event_handler(self, feature: AthenaFeature) -> None:
        """Aggregate by app id, switch id, and timestamp; then Check_SLA."""
        bucket = int(feature.timestamp // self.bucket_seconds)
        app_id = feature.app_id or "unknown"
        delta = feature.fields.get(
            "FLOW_PACKET_COUNT_VAR", feature.fields.get("FLOW_PACKET_COUNT", 0.0)
        )
        self.series[(bucket, feature.switch_id, app_id)] += max(0.0, delta)
        # Judge a bucket only once it is complete: statistics polls deliver
        # one switch's features before the other's, so a live bucket is
        # transiently one-sided even under perfect balance.
        if self._current_bucket is not None and bucket > self._current_bucket:
            self.check_sla(self._current_bucket)
        self._current_bucket = max(bucket, self._current_bucket or bucket)

    def check_sla(self, bucket: int) -> bool:
        """The custom SLA check: per-switch traffic shares must stay even."""
        per_switch: Dict[int, float] = defaultdict(float)
        for (b, switch_id, _app), packets in self.series.items():
            if b == bucket:
                per_switch[switch_id] += packets
        total = sum(per_switch.values())
        if total < self.min_bucket_packets or len(per_switch) < 1:
            return True
        top_switch, top_packets = max(per_switch.items(), key=lambda kv: kv[1])
        share = top_packets / total
        if share > self.sla_imbalance_threshold:
            violation = {
                "bucket": bucket,
                "time": bucket * self.bucket_seconds,
                "switch_id": top_switch,
                "share": share,
                "per_switch": dict(per_switch),
            }
            if not any(v["bucket"] == bucket for v in self.violations):
                self.violations.append(violation)
                self.deployment.ui_manager.alert(
                    self.name,
                    f"SLA violation at t={violation['time']:.0f}s: switch "
                    f"{top_switch} carries {share:.0%} of monitored traffic",
                )
            return False
        return True

    # -- reporting (ResultsGenerator + ShowResults) ------------------------------------

    def results_rows(self) -> List[Dict[str, Any]]:
        """The aggregated series as chartable rows (Figure 9's data)."""
        rows = []
        for (bucket, switch_id, app_id), packets in sorted(self.series.items()):
            rows.append(
                {
                    "timestamp": bucket * self.bucket_seconds,
                    "switch_id": switch_id,
                    "app_id": app_id,
                    "value": packets,
                }
            )
        return rows

    def show(self) -> str:
        """Render the per-switch packet-count series (Figure 9)."""
        rows = self.results_rows()
        if not rows:
            return self.nb.ShowResults("(no NAE data)")
        chart = self.deployment.ui_manager.show_timeseries(
            rows, group_field="switch_id"
        )
        return chart
