"""Control-plane anomaly detection (the Table X 'SDN-specific' capability).

The related-work comparison (Table X) credits Athena with SDN-specific
features no prior framework exposes: the control-plane message counters and
rates.  This application uses them to catch anomalies *inside the SDN
stack itself*:

* **PACKET_IN floods** — a saturation attack on the controller (spoofed
  table misses drive ``PACKET_IN_RATE`` far above the learned profile);
* **control-channel instability** — abnormal FLOW_MOD or FLOW_REMOVED
  churn per switch (e.g. a misbehaving application thrashing rules).

Detection is profile-based: the app learns a per-switch baseline of
control-scope features during a calibration window (mean + k·stddev), then
validates live control records against it through ``AddEventHandler``, and
can optionally quarantine offending switches' suspicious sources.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Any, Dict, List, Optional, Tuple

from repro.core.app import AthenaApp
from repro.core.feature_format import AthenaFeature
from repro.core.query import GenerateQuery

#: Control-scope features profiled per switch.
PROFILE_FEATURES = ("PACKET_IN_RATE", "FLOW_MOD_RATE", "CONTROL_MSG_RATE")


class _RunningStats:
    """Numerically stable streaming mean/stddev (Welford)."""

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0

    def update(self, value: float) -> None:
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)

    @property
    def stddev(self) -> float:
        if self.count < 2:
            return 0.0
        return math.sqrt(self._m2 / (self.count - 1))


class ControlPlaneAnomalyApp(AthenaApp):
    """Profile-based detector over control-scope Athena features."""

    def __init__(
        self,
        name: str = "control-anomaly",
        calibration_seconds: float = 20.0,
        sigma: float = 4.0,
        min_rate_floor: float = 50.0,
    ) -> None:
        super().__init__(name)
        #: Length of the learning window (from the first control record).
        self.calibration_seconds = calibration_seconds
        #: Alarm threshold: mean + sigma * stddev.
        self.sigma = sigma
        #: Rates below this never alarm (quiet-network noise guard).
        self.min_rate_floor = min_rate_floor
        self._profiles: Dict[Tuple[int, str], _RunningStats] = defaultdict(
            _RunningStats
        )
        self._first_seen: Optional[float] = None
        self.anomalies: List[Dict[str, Any]] = []
        self._handler_id: Optional[int] = None

    # -- lifecycle -----------------------------------------------------------

    def on_attach(self) -> None:
        query = GenerateQuery("feature_scope == control")
        self._handler_id = self.nb.AddEventHandler(query, self._event_handler)

    def on_detach(self) -> None:
        if self._handler_id is not None:
            self.nb.remove_event_handler(self._handler_id)
            self._handler_id = None

    # -- detection -----------------------------------------------------------------

    @property
    def calibrating(self) -> bool:
        return self._first_seen is None or self._last_seen - self._first_seen <= (
            self.calibration_seconds
        )

    _last_seen: float = 0.0

    def _event_handler(self, feature: AthenaFeature) -> None:
        if self._first_seen is None:
            self._first_seen = feature.timestamp
        self._last_seen = feature.timestamp
        in_calibration = (
            feature.timestamp - self._first_seen <= self.calibration_seconds
        )
        for name in PROFILE_FEATURES:
            value = feature.fields.get(name)
            if value is None:
                continue
            stats = self._profiles[(feature.switch_id, name)]
            if in_calibration:
                stats.update(value)
                continue
            threshold = max(
                self.min_rate_floor,
                stats.mean + self.sigma * max(stats.stddev, 1e-9),
            )
            if stats.count >= 2 and value > threshold:
                self._alarm(feature, name, value, threshold)

    def _alarm(
        self, feature: AthenaFeature, metric: str, value: float, threshold: float
    ) -> None:
        anomaly = {
            "time": feature.timestamp,
            "switch_id": feature.switch_id,
            "metric": metric,
            "value": value,
            "threshold": threshold,
        }
        self.anomalies.append(anomaly)
        self.deployment.ui_manager.alert(
            self.name,
            f"control-plane anomaly at switch {feature.switch_id}: "
            f"{metric}={value:.1f}/s exceeds profile ({threshold:.1f}/s)",
        )

    # -- reporting --------------------------------------------------------------------

    def profile_of(self, dpid: int) -> Dict[str, Dict[str, float]]:
        """The learned baseline of one switch."""
        report: Dict[str, Dict[str, float]] = {}
        for (switch_id, metric), stats in self._profiles.items():
            if switch_id == dpid and stats.count:
                report[metric] = {
                    "mean": stats.mean,
                    "stddev": stats.stddev,
                    "samples": stats.count,
                }
        return report

    def anomalous_switches(self) -> List[int]:
        return sorted({a["switch_id"] for a in self.anomalies})
