"""Scenario 1: the large-scale DDoS attack detector.

:func:`ddos_detector_application` is a line-for-line rendering of the
paper's Application 1 pseudocode against the real NB API; Table VIII's
usability bench counts its source lines.  :class:`DDoSDetectorApp` wraps
the same flow as a managed Athena application and adds live mitigation.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.algorithm import GenerateAlgorithm
from repro.core.app import AthenaApp
from repro.core.preprocessor import GeneratePreprocessor
from repro.core.query import GenerateQuery
from repro.core.reactions import BlockReaction
from repro.core.results import ValidationSummary
from repro.workloads.ddos import DDOS_FEATURES


# -- The Application 1 pseudocode, verbatim against the NB API --------------
# (Counted by the Table VIII SLoC bench: keep it minimal and linear.)


def ddos_detector_application(
    nb,
    algorithm: str = "kmeans",
    params: Optional[Dict[str, Any]] = None,
    train_window=(0.0, 1800.0),
    test_window=(1800.0, 3600.0),
):
    """Build, validate and display a DDoS detection model (Application 1)."""
    # Define the features to be trained
    q_train = GenerateQuery("feature_scope == flow")
    q_train.time_window(*train_window)
    # Define data pre-processing
    f = GeneratePreprocessor(
        normalization="minmax",
        weights={"PAIR_FLOW": 1.5, "PAIR_FLOW_RATIO": 1.5},
        marking="label",
    )
    # Register the features used in the algorithm
    f.add_all(DDOS_FEATURES)
    # Define an algorithm with parameters
    a = GenerateAlgorithm(algorithm, **(params or {"k": 8, "max_iterations": 20, "runs": 5}))
    # Generate a detection model
    m = nb.GenerateDetectionModel(q_train, f, a)
    # Define the features to be tested
    q_test = GenerateQuery("feature_scope == flow")
    q_test.time_window(*test_window)
    # Test the features
    r = nb.ValidateFeatures(q_test, f, m)
    # Show results with CLI interface
    nb.ShowResults(r)
    return m, r


class DDoSDetectorApp(AthenaApp):
    """The Scenario 1 detector as a managed application with mitigation."""

    def __init__(
        self,
        name: str = "ddos-detector",
        algorithm: str = "kmeans",
        params: Optional[Dict[str, Any]] = None,
        block_on_detection: bool = False,
    ) -> None:
        super().__init__(name)
        self.algorithm = algorithm
        if params is None:
            params = (
                {"k": 8, "max_iterations": 20, "runs": 5}
                if algorithm == "kmeans"
                else {}
            )
        self.params = params
        self.block_on_detection = block_on_detection
        self.model = None
        self.last_summary: Optional[ValidationSummary] = None
        self.blocked_sources: List[str] = []

    def run_batch(
        self,
        train_documents: Optional[List[Dict[str, Any]]] = None,
        test_documents: Optional[List[Dict[str, Any]]] = None,
        train_window=(0.0, 1800.0),
        test_window=(1800.0, 3600.0),
    ) -> ValidationSummary:
        """Train and validate, optionally over pre-fetched documents."""
        q_train = GenerateQuery("feature_scope == flow").time_window(*train_window)
        q_test = GenerateQuery("feature_scope == flow").time_window(*test_window)
        preprocessor = GeneratePreprocessor(
            normalization="minmax",
            weights={"PAIR_FLOW": 1.5, "PAIR_FLOW_RATIO": 1.5},
            marking="label",
            features=DDOS_FEATURES,
        )
        algorithm = GenerateAlgorithm(self.algorithm, **self.params)
        self.model = self.nb.GenerateDetectionModel(
            q_train, preprocessor, algorithm, documents=train_documents
        )
        self.last_summary = self.nb.ValidateFeatures(
            q_test, preprocessor, self.model, documents=test_documents
        )
        if self.block_on_detection:
            self._mitigate(test_documents)
        return self.last_summary

    def _mitigate(self, test_documents: Optional[List[Dict[str, Any]]]) -> None:
        """Block the sources of entries the model flagged malicious."""
        if self.last_summary is None or self.last_summary.predictions is None:
            return
        documents = test_documents or []
        suspicious: List[str] = []
        for doc, verdict in zip(documents, self.last_summary.predictions):
            ip = doc.get("ip_src")
            if verdict and ip and ip not in suspicious:
                suspicious.append(ip)
        if suspicious:
            self.nb.Reactor(None, BlockReaction(target_ips=suspicious))
            self.blocked_sources = suspicious
