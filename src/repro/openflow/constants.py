"""OpenFlow protocol constants (subset of the 1.0/1.3 specifications)."""

from __future__ import annotations

from enum import IntEnum

#: Wire protocol version bytes.
OFP_VERSION_10 = 0x01
OFP_VERSION_13 = 0x04

#: Priority used by table-miss entries in OF 1.3 pipelines.
TABLE_MISS_PRIORITY = 0

#: Default priority ONOS assigns to reactive flows.
DEFAULT_PRIORITY = 10

#: Ethertypes the simulator understands.
ETH_TYPE_IPV4 = 0x0800
ETH_TYPE_ARP = 0x0806
ETH_TYPE_LLDP = 0x88CC

#: IP protocol numbers.
IPPROTO_ICMP = 1
IPPROTO_TCP = 6
IPPROTO_UDP = 17


class MessageType(IntEnum):
    """OpenFlow message type codes (OF 1.0 numbering for the shared subset)."""

    HELLO = 0
    ERROR = 1
    ECHO_REQUEST = 2
    ECHO_REPLY = 3
    FEATURES_REQUEST = 5
    FEATURES_REPLY = 6
    PACKET_IN = 10
    FLOW_REMOVED = 11
    PORT_STATUS = 12
    PACKET_OUT = 13
    FLOW_MOD = 14
    STATS_REQUEST = 16
    STATS_REPLY = 17
    BARRIER_REQUEST = 18
    BARRIER_REPLY = 19


class PacketInReason(IntEnum):
    """Why a packet was punted to the controller."""

    NO_MATCH = 0
    ACTION = 1
    INVALID_TTL = 2


class FlowModCommand(IntEnum):
    """FLOW_MOD commands."""

    ADD = 0
    MODIFY = 1
    MODIFY_STRICT = 2
    DELETE = 3
    DELETE_STRICT = 4


class FlowRemovedReason(IntEnum):
    """Why a flow entry was evicted from a flow table."""

    IDLE_TIMEOUT = 0
    HARD_TIMEOUT = 1
    DELETE = 2
    GROUP_DELETE = 3


class PortReason(IntEnum):
    """PORT_STATUS change reasons."""

    ADD = 0
    DELETE = 1
    MODIFY = 2


class StatsType(IntEnum):
    """Statistics request/reply subtypes."""

    DESC = 0
    FLOW = 1
    AGGREGATE = 2
    TABLE = 3
    PORT = 4
