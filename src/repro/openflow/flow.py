"""Flow entries and their counters.

A :class:`FlowEntry` is the unit a switch's flow table stores: a match, a
priority, an action list, idle/hard timeouts, and live counters.  The
counters are the raw material for Athena's protocol-centric features
(packet count, byte count, duration), so their update rules mirror the
OpenFlow spec: every matched packet bumps ``packet_count``/``byte_count``
and refreshes the idle-timeout deadline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.openflow.actions import Action
from repro.openflow.match import Match


@dataclass
class FlowStats:
    """Mutable counters attached to a flow entry."""

    packet_count: int = 0
    byte_count: int = 0
    install_time: float = 0.0
    last_packet_time: float = 0.0

    def record(self, bytes_: int, now: float, packets: int = 1) -> None:
        """Account ``packets`` totalling ``bytes_`` bytes seen at ``now``."""
        self.packet_count += packets
        self.byte_count += bytes_
        self.last_packet_time = now

    def duration(self, now: float) -> float:
        """Seconds the entry has been installed."""
        return max(0.0, now - self.install_time)


@dataclass
class FlowEntry:
    """One row of a flow table."""

    match: Match
    priority: int = 0
    actions: List[Action] = field(default_factory=list)
    idle_timeout: float = 0.0
    hard_timeout: float = 0.0
    cookie: int = 0
    app_id: Optional[str] = None
    table_id: int = 0
    stats: FlowStats = field(default_factory=FlowStats)

    def sort_key(self) -> Tuple[int, int]:
        """Flow tables try higher priority first, then more specific matches."""
        return (-self.priority, -self.match.specificity())

    def is_idle_expired(self, now: float) -> bool:
        """True if the idle (soft) timeout has elapsed since the last packet."""
        if self.idle_timeout <= 0:
            return False
        reference = max(self.stats.last_packet_time, self.stats.install_time)
        return now - reference >= self.idle_timeout

    def is_hard_expired(self, now: float) -> bool:
        """True if the hard timeout has elapsed since installation."""
        if self.hard_timeout <= 0:
            return False
        return now - self.stats.install_time >= self.hard_timeout

    def __str__(self) -> str:
        return (
            f"FlowEntry(prio={self.priority}, {self.match}, "
            f"pkts={self.stats.packet_count}, app={self.app_id})"
        )
