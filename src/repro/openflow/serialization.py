"""Binary codec for OpenFlow messages.

The simulator normally passes message objects by reference, but the codec
gives the messages a concrete wire form: an 8-byte OpenFlow header
(version, type, length, xid) followed by a type-specific body.  Variable
structures (matches, header dicts, action lists) are encoded as compact
tag-length-value runs.  Round-tripping through the codec is property-tested,
and the Cbench harness uses encoded sizes for throughput accounting.
"""

from __future__ import annotations

import struct
from typing import Any, Dict, List, Tuple

from repro.errors import OpenFlowError
from repro.openflow import actions as act
from repro.openflow.constants import (
    OFP_VERSION_13,
    FlowModCommand,
    FlowRemovedReason,
    MessageType,
    PacketInReason,
    PortReason,
    StatsType,
)
from repro.openflow.match import MATCH_FIELDS, Match
from repro.openflow.messages import (
    AggregateStatsReply,
    AggregateStatsRequest,
    BarrierReply,
    BarrierRequest,
    EchoReply,
    EchoRequest,
    FeaturesReply,
    FeaturesRequest,
    FlowMod,
    FlowRemoved,
    FlowStatsEntry,
    FlowStatsReply,
    FlowStatsRequest,
    Hello,
    OpenFlowMessage,
    PacketIn,
    PacketOut,
    PortStatsEntry,
    PortStatsReply,
    PortStatsRequest,
    PortStatus,
    StatsReply,
    StatsRequest,
    TableStatsEntry,
    TableStatsReply,
    TableStatsRequest,
)

_HEADER = struct.Struct("!BBHI")  # version, type, length, xid

#: Message classes the codec never encodes directly: the root and the two
#: stats intermediates, which exist only to carry shared fields.
ABSTRACT_MESSAGES = (OpenFlowMessage, StatsRequest, StatsReply)

#: Every concrete message class the codec supports, mapped to the wire
#: message type its body is encoded under.  Tests parametrize round-trips
#: over this mapping, and ``repro.analysis`` cross-checks it against the
#: class definitions in ``messages.py`` — a class missing here (or a
#: registry entry without a class) is a lint error, not a runtime surprise.
CODEC_REGISTRY: Dict[type, MessageType] = {
    Hello: MessageType.HELLO,
    EchoRequest: MessageType.ECHO_REQUEST,
    EchoReply: MessageType.ECHO_REPLY,
    FeaturesRequest: MessageType.FEATURES_REQUEST,
    FeaturesReply: MessageType.FEATURES_REPLY,
    PacketIn: MessageType.PACKET_IN,
    PacketOut: MessageType.PACKET_OUT,
    FlowMod: MessageType.FLOW_MOD,
    FlowRemoved: MessageType.FLOW_REMOVED,
    PortStatus: MessageType.PORT_STATUS,
    FlowStatsRequest: MessageType.STATS_REQUEST,
    PortStatsRequest: MessageType.STATS_REQUEST,
    AggregateStatsRequest: MessageType.STATS_REQUEST,
    TableStatsRequest: MessageType.STATS_REQUEST,
    FlowStatsReply: MessageType.STATS_REPLY,
    PortStatsReply: MessageType.STATS_REPLY,
    AggregateStatsReply: MessageType.STATS_REPLY,
    TableStatsReply: MessageType.STATS_REPLY,
    BarrierRequest: MessageType.BARRIER_REQUEST,
    BarrierReply: MessageType.BARRIER_REPLY,
}


def _pack_str(text: str) -> bytes:
    raw = text.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise OpenFlowError("string too long to encode")
    return struct.pack("!H", len(raw)) + raw


def _unpack_str(buf: bytes, offset: int) -> Tuple[str, int]:
    (length,) = struct.unpack_from("!H", buf, offset)
    offset += 2
    return buf[offset : offset + length].decode("utf-8"), offset + length


def _pack_value(value: Any) -> bytes:
    """Encode a scalar as a 1-byte type tag plus payload."""
    if value is None:
        return b"N"
    if isinstance(value, bool):
        return b"B" + (b"\x01" if value else b"\x00")
    if isinstance(value, int):
        return b"I" + struct.pack("!q", value)
    if isinstance(value, float):
        return b"F" + struct.pack("!d", value)
    if isinstance(value, str):
        return b"S" + _pack_str(value)
    raise OpenFlowError(f"cannot encode value of type {type(value).__name__}")


def _unpack_value(buf: bytes, offset: int) -> Tuple[Any, int]:
    tag = buf[offset : offset + 1]
    offset += 1
    if tag == b"N":
        return None, offset
    if tag == b"B":
        return buf[offset] != 0, offset + 1
    if tag == b"I":
        (value,) = struct.unpack_from("!q", buf, offset)
        return value, offset + 8
    if tag == b"F":
        (value,) = struct.unpack_from("!d", buf, offset)
        return value, offset + 8
    if tag == b"S":
        return _unpack_str(buf, offset)
    raise OpenFlowError(f"unknown value tag {tag!r}")


def _pack_dict(data: Dict[str, Any]) -> bytes:
    out = [struct.pack("!H", len(data))]
    for key in sorted(data):
        out.append(_pack_str(key))
        out.append(_pack_value(data[key]))
    return b"".join(out)


def _unpack_dict(buf: bytes, offset: int) -> Tuple[Dict[str, Any], int]:
    (count,) = struct.unpack_from("!H", buf, offset)
    offset += 2
    data: Dict[str, Any] = {}
    for _ in range(count):
        key, offset = _unpack_str(buf, offset)
        value, offset = _unpack_value(buf, offset)
        data[key] = value
    return data, offset


def _pack_match(match: Match) -> bytes:
    return _pack_dict(match.to_dict())


def _unpack_match(buf: bytes, offset: int) -> Tuple[Match, int]:
    data, offset = _unpack_dict(buf, offset)
    unknown = set(data) - set(MATCH_FIELDS)
    if unknown:
        raise OpenFlowError(f"unknown match fields on wire: {sorted(unknown)}")
    return Match(**data), offset


_ACTION_CODES = {
    "output": 0,
    "controller": 1,
    "drop": 2,
    "set_eth_src": 3,
    "set_eth_dst": 4,
    "set_ip_src": 5,
    "set_ip_dst": 6,
}


def _pack_actions(actions: List[act.Action]) -> bytes:
    out = [struct.pack("!H", len(actions))]
    for action in actions:
        code = _ACTION_CODES.get(action.kind)
        if code is None:
            raise OpenFlowError(f"cannot encode action kind {action.kind!r}")
        out.append(struct.pack("!B", code))
        if isinstance(action, act.ActionOutput):
            out.append(struct.pack("!I", action.port))
        elif isinstance(action, act.ActionController):
            out.append(struct.pack("!I", action.max_len))
        elif isinstance(action, (act.ActionSetEthSrc, act.ActionSetEthDst)):
            out.append(_pack_str(action.mac))
        elif isinstance(action, (act.ActionSetIpSrc, act.ActionSetIpDst)):
            out.append(_pack_str(action.ip))
    return b"".join(out)


def _unpack_actions(buf: bytes, offset: int) -> Tuple[List[act.Action], int]:
    (count,) = struct.unpack_from("!H", buf, offset)
    offset += 2
    out: List[act.Action] = []
    for _ in range(count):
        code = buf[offset]
        offset += 1
        if code == 0:
            (port,) = struct.unpack_from("!I", buf, offset)
            offset += 4
            out.append(act.ActionOutput(port=port))
        elif code == 1:
            (max_len,) = struct.unpack_from("!I", buf, offset)
            offset += 4
            out.append(act.ActionController(max_len=max_len))
        elif code == 2:
            out.append(act.ActionDrop())
        elif code in (3, 4):
            mac, offset = _unpack_str(buf, offset)
            cls = act.ActionSetEthSrc if code == 3 else act.ActionSetEthDst
            out.append(cls(mac=mac))
        elif code in (5, 6):
            ip, offset = _unpack_str(buf, offset)
            cls = act.ActionSetIpSrc if code == 5 else act.ActionSetIpDst
            out.append(cls(ip=ip))
        else:
            raise OpenFlowError(f"unknown action code {code}")
    return out, offset


def pack_message(msg: OpenFlowMessage, version: int = OFP_VERSION_13) -> bytes:
    """Encode a message to bytes (OpenFlow-style header + typed body)."""
    if type(msg) not in CODEC_REGISTRY:
        raise OpenFlowError(
            f"{type(msg).__name__} has no codec registration; "
            f"add it to CODEC_REGISTRY and the pack/unpack paths"
        )
    body = _pack_body(msg)
    body = struct.pack("!Q", msg.dpid) + body
    length = _HEADER.size + len(body)
    header = _HEADER.pack(version, int(msg.msg_type), length & 0xFFFF, msg.xid)
    return header + body


def _pack_body(msg: OpenFlowMessage) -> bytes:
    if isinstance(msg, Hello):
        return struct.pack("!B", msg.version)
    if isinstance(msg, (EchoRequest, EchoReply, FeaturesRequest)):
        return b""
    if isinstance(msg, (BarrierRequest, BarrierReply)):
        return b""
    if isinstance(msg, FeaturesReply):
        ports = struct.pack("!H", len(msg.ports)) + b"".join(
            struct.pack("!I", p) for p in msg.ports
        )
        return struct.pack("!B", msg.n_tables) + ports
    if isinstance(msg, PacketIn):
        return (
            struct.pack(
                "!iIBI", msg.buffer_id, msg.in_port, int(msg.reason), msg.total_len
            )
            + _pack_dict(msg.headers)
        )
    if isinstance(msg, PacketOut):
        return (
            struct.pack("!iII", msg.buffer_id, msg.in_port, msg.total_len)
            + _pack_actions(msg.actions)
            + _pack_dict(msg.headers)
        )
    if isinstance(msg, FlowMod):
        fixed = struct.pack(
            "!BIddQB",
            int(msg.command),
            msg.priority,
            msg.idle_timeout,
            msg.hard_timeout,
            msg.cookie,
            msg.table_id,
        )
        return (
            fixed
            + _pack_match(msg.match)
            + _pack_actions(msg.actions)
            + _pack_value(msg.app_id)
            + _pack_value(msg.out_port)
        )
    if isinstance(msg, FlowRemoved):
        fixed = struct.pack(
            "!IBdQQQ",
            msg.priority,
            int(msg.reason),
            msg.duration_sec,
            msg.packet_count,
            msg.byte_count,
            msg.cookie,
        )
        return fixed + _pack_match(msg.match) + _pack_value(msg.app_id)
    if isinstance(msg, PortStatus):
        return struct.pack("!IBB", msg.port_no, int(msg.reason), int(msg.link_up))
    if isinstance(msg, FlowStatsRequest):
        return (
            struct.pack("!BB", int(msg.stats_type), msg.table_id)
            + _pack_match(msg.match)
        )
    if isinstance(msg, PortStatsRequest):
        return struct.pack("!B", int(msg.stats_type)) + _pack_value(msg.port_no)
    if isinstance(msg, AggregateStatsRequest):
        return struct.pack("!B", int(msg.stats_type)) + _pack_match(msg.match)
    if isinstance(msg, TableStatsRequest):
        return struct.pack("!B", int(msg.stats_type))
    if isinstance(msg, FlowStatsReply):
        out = [struct.pack("!BI", int(msg.stats_type), len(msg.entries))]
        for entry in msg.entries:
            out.append(
                struct.pack(
                    "!IdQQddQB",
                    entry.priority,
                    entry.duration_sec,
                    entry.packet_count,
                    entry.byte_count,
                    entry.idle_timeout,
                    entry.hard_timeout,
                    entry.cookie,
                    entry.table_id,
                )
            )
            out.append(_pack_match(entry.match))
            out.append(_pack_value(entry.app_id))
        return b"".join(out)
    if isinstance(msg, PortStatsReply):
        out = [struct.pack("!BI", int(msg.stats_type), len(msg.entries))]
        for entry in msg.entries:
            out.append(
                struct.pack(
                    "!IQQQQQQQQ",
                    entry.port_no,
                    entry.rx_packets,
                    entry.tx_packets,
                    entry.rx_bytes,
                    entry.tx_bytes,
                    entry.rx_dropped,
                    entry.tx_dropped,
                    entry.rx_errors,
                    entry.tx_errors,
                )
            )
        return b"".join(out)
    if isinstance(msg, AggregateStatsReply):
        return struct.pack(
            "!BQQI",
            int(msg.stats_type),
            msg.packet_count,
            msg.byte_count,
            msg.flow_count,
        )
    if isinstance(msg, TableStatsReply):
        out = [struct.pack("!BI", int(msg.stats_type), len(msg.entries))]
        for entry in msg.entries:
            out.append(
                struct.pack(
                    "!BQQQQ",
                    entry.table_id,
                    entry.active_count,
                    entry.lookup_count,
                    entry.matched_count,
                    entry.max_entries,
                )
            )
        return b"".join(out)
    raise OpenFlowError(f"cannot encode message type {type(msg).__name__}")


def unpack_message(buf: bytes) -> OpenFlowMessage:
    """Decode bytes produced by :func:`pack_message` back into a message."""
    if len(buf) < _HEADER.size:
        raise OpenFlowError("buffer shorter than OpenFlow header")
    _version, msg_type_raw, _length, xid = _HEADER.unpack_from(buf, 0)
    offset = _HEADER.size
    (dpid,) = struct.unpack_from("!Q", buf, offset)
    offset += 8
    try:
        msg_type = MessageType(msg_type_raw)
    except ValueError as exc:
        raise OpenFlowError(f"unknown message type {msg_type_raw}") from exc
    msg = _unpack_body(msg_type, buf, offset)
    msg.dpid = dpid
    msg.xid = xid
    return msg


def _unpack_body(msg_type: MessageType, buf: bytes, offset: int) -> OpenFlowMessage:
    if msg_type == MessageType.HELLO:
        return Hello(version=buf[offset])
    if msg_type == MessageType.ECHO_REQUEST:
        return EchoRequest()
    if msg_type == MessageType.ECHO_REPLY:
        return EchoReply()
    if msg_type == MessageType.FEATURES_REQUEST:
        return FeaturesRequest()
    if msg_type == MessageType.BARRIER_REQUEST:
        return BarrierRequest()
    if msg_type == MessageType.BARRIER_REPLY:
        return BarrierReply()
    if msg_type == MessageType.FEATURES_REPLY:
        n_tables = buf[offset]
        offset += 1
        (count,) = struct.unpack_from("!H", buf, offset)
        offset += 2
        ports = []
        for _ in range(count):
            (port,) = struct.unpack_from("!I", buf, offset)
            offset += 4
            ports.append(port)
        return FeaturesReply(n_tables=n_tables, ports=ports)
    if msg_type == MessageType.PACKET_IN:
        buffer_id, in_port, reason, total_len = struct.unpack_from(
            "!iIBI", buf, offset
        )
        offset += struct.calcsize("!iIBI")
        headers, _ = _unpack_dict(buf, offset)
        return PacketIn(
            buffer_id=buffer_id,
            in_port=in_port,
            reason=PacketInReason(reason),
            total_len=total_len,
            headers=headers,
        )
    if msg_type == MessageType.PACKET_OUT:
        buffer_id, in_port, total_len = struct.unpack_from("!iII", buf, offset)
        offset += struct.calcsize("!iII")
        actions, offset = _unpack_actions(buf, offset)
        headers, _ = _unpack_dict(buf, offset)
        return PacketOut(
            buffer_id=buffer_id,
            in_port=in_port,
            total_len=total_len,
            actions=actions,
            headers=headers,
        )
    if msg_type == MessageType.FLOW_MOD:
        command, priority, idle, hard, cookie, table_id = struct.unpack_from(
            "!BIddQB", buf, offset
        )
        offset += struct.calcsize("!BIddQB")
        match, offset = _unpack_match(buf, offset)
        actions, offset = _unpack_actions(buf, offset)
        app_id, offset = _unpack_value(buf, offset)
        out_port, _ = _unpack_value(buf, offset)
        return FlowMod(
            command=FlowModCommand(command),
            match=match,
            priority=priority,
            actions=actions,
            idle_timeout=idle,
            hard_timeout=hard,
            cookie=cookie,
            table_id=table_id,
            app_id=app_id,
            out_port=out_port,
        )
    if msg_type == MessageType.FLOW_REMOVED:
        priority, reason, duration, pkts, bytes_, cookie = struct.unpack_from(
            "!IBdQQQ", buf, offset
        )
        offset += struct.calcsize("!IBdQQQ")
        match, offset = _unpack_match(buf, offset)
        app_id, _ = _unpack_value(buf, offset)
        return FlowRemoved(
            match=match,
            priority=priority,
            reason=FlowRemovedReason(reason),
            duration_sec=duration,
            packet_count=pkts,
            byte_count=bytes_,
            cookie=cookie,
            app_id=app_id,
        )
    if msg_type == MessageType.PORT_STATUS:
        port_no, reason, link_up = struct.unpack_from("!IBB", buf, offset)
        return PortStatus(
            port_no=port_no, reason=PortReason(reason), link_up=bool(link_up)
        )
    if msg_type == MessageType.STATS_REQUEST:
        return _unpack_stats_request(buf, offset)
    if msg_type == MessageType.STATS_REPLY:
        return _unpack_stats_reply(buf, offset)
    raise OpenFlowError(f"cannot decode message type {msg_type!r}")


def _unpack_stats_request(buf: bytes, offset: int) -> OpenFlowMessage:
    subtype = StatsType(buf[offset])
    offset += 1
    if subtype == StatsType.FLOW:
        table_id = buf[offset]
        offset += 1
        match, _ = _unpack_match(buf, offset)
        return FlowStatsRequest(match=match, table_id=table_id)
    if subtype == StatsType.PORT:
        port_no, _ = _unpack_value(buf, offset)
        return PortStatsRequest(port_no=port_no)
    if subtype == StatsType.AGGREGATE:
        match, _ = _unpack_match(buf, offset)
        return AggregateStatsRequest(match=match)
    if subtype == StatsType.TABLE:
        return TableStatsRequest()
    raise OpenFlowError(f"cannot decode stats request subtype {subtype!r}")


def _unpack_stats_reply(buf: bytes, offset: int) -> OpenFlowMessage:
    subtype = StatsType(buf[offset])
    offset += 1
    if subtype == StatsType.FLOW:
        (count,) = struct.unpack_from("!I", buf, offset)
        offset += 4
        entries = []
        fixed = struct.Struct("!IdQQddQB")
        for _ in range(count):
            (priority, duration, pkts, bytes_, idle, hard, cookie,
             table_id) = fixed.unpack_from(buf, offset)
            offset += fixed.size
            match, offset = _unpack_match(buf, offset)
            app_id, offset = _unpack_value(buf, offset)
            entries.append(
                FlowStatsEntry(
                    match=match,
                    priority=priority,
                    duration_sec=duration,
                    packet_count=pkts,
                    byte_count=bytes_,
                    idle_timeout=idle,
                    hard_timeout=hard,
                    cookie=cookie,
                    app_id=app_id,
                    table_id=table_id,
                )
            )
        return FlowStatsReply(entries=entries)
    if subtype == StatsType.PORT:
        (count,) = struct.unpack_from("!I", buf, offset)
        offset += 4
        entries = []
        fixed = struct.Struct("!IQQQQQQQQ")
        for _ in range(count):
            values = fixed.unpack_from(buf, offset)
            offset += fixed.size
            entries.append(PortStatsEntry(*values))
        return PortStatsReply(entries=entries)
    if subtype == StatsType.AGGREGATE:
        packets, bytes_, flows = struct.unpack_from("!QQI", buf, offset)
        return AggregateStatsReply(
            packet_count=packets, byte_count=bytes_, flow_count=flows
        )
    if subtype == StatsType.TABLE:
        (count,) = struct.unpack_from("!I", buf, offset)
        offset += 4
        entries = []
        fixed = struct.Struct("!BQQQQ")
        for _ in range(count):
            values = fixed.unpack_from(buf, offset)
            offset += fixed.size
            entries.append(TableStatsEntry(*values))
        return TableStatsReply(entries=entries)
    raise OpenFlowError(f"cannot decode stats reply subtype {subtype!r}")


def roundtrips(msg: OpenFlowMessage) -> bool:
    """True if ``msg`` survives an encode/decode cycle (used in tests)."""
    try:
        decoded = unpack_message(pack_message(msg))
    except OpenFlowError:
        return False
    return type(decoded) is type(msg)
