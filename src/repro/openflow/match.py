"""The OpenFlow match structure.

A :class:`Match` is the 12-tuple-style header match of OpenFlow 1.0 with the
fields Athena's feature catalog indexes on.  ``None`` means wildcard.  The
structure is hashable so flow tables and Athena's per-flow state tables can
key on it directly.

Matching is the innermost loop of the simulated dataplane — every packet
through every switch evaluates at least one :meth:`Match.matches` — so a
match compiles itself once at construction: the non-wildcard fields are
frozen into tuples and a closure over only those fields replaces the
per-call ``dataclasses.fields()`` introspection of the reference
implementation (kept, and selectable with ``ATHENA_FAST_PATH=0``; see
docs/PERF.md).
"""

# athena-lint: hot-path

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Callable, Dict, Optional, Tuple

from repro.errors import OpenFlowError
from repro.perf import fastpath as _fastpath

#: Names of all matchable fields in precedence-free order (this order is
#: also the dataclass field order, which the compiled caches rely on).
MATCH_FIELDS = (
    "in_port",
    "eth_src",
    "eth_dst",
    "eth_type",
    "vlan_id",
    "ip_src",
    "ip_dst",
    "ip_proto",
    "ip_tos",
    "tcp_src",
    "tcp_dst",
)


def _compile_predicate(
    set_fields: Tuple[Tuple[str, Any], ...]
) -> Callable[[Dict[str, Any]], bool]:
    """Build the per-instance ``matches`` closure over non-wildcard fields."""
    if not set_fields:
        return lambda headers: True
    if len(set_fields) == 1:
        ((name, wanted),) = set_fields

        def predicate_one(headers: Dict[str, Any]) -> bool:
            return headers.get(name) == wanted

        return predicate_one

    def predicate(headers: Dict[str, Any]) -> bool:
        get = headers.get
        for name, wanted in set_fields:
            if get(name) != wanted:
                return False
        return True

    return predicate


@dataclass(frozen=True)
class Match:
    """An immutable header match; unset fields are wildcards.

    ``tcp_src``/``tcp_dst`` carry the L4 source/destination port for both TCP
    and UDP, mirroring OpenFlow 1.0's ``tp_src``/``tp_dst``.
    """

    in_port: Optional[int] = None
    eth_src: Optional[str] = None
    eth_dst: Optional[str] = None
    eth_type: Optional[int] = None
    vlan_id: Optional[int] = None
    ip_src: Optional[str] = None
    ip_dst: Optional[str] = None
    ip_proto: Optional[int] = None
    ip_tos: Optional[int] = None
    tcp_src: Optional[int] = None
    tcp_dst: Optional[int] = None

    def __post_init__(self) -> None:
        # Compile once per instance.  The caches live in the instance
        # __dict__ and never participate in dataclass eq/hash; the field
        # order below mirrors MATCH_FIELDS exactly.
        values = (
            self.in_port,
            self.eth_src,
            self.eth_dst,
            self.eth_type,
            self.vlan_id,
            self.ip_src,
            self.ip_dst,
            self.ip_proto,
            self.ip_tos,
            self.tcp_src,
            self.tcp_dst,
        )
        set_fields = tuple(
            (name, value)
            for name, value in zip(MATCH_FIELDS, values)
            if value is not None
        )
        object.__setattr__(self, "_key", values)
        object.__setattr__(self, "_set_fields", set_fields)
        object.__setattr__(
            self,
            "_set_indexed",
            tuple((i, value) for i, value in enumerate(values) if value is not None),
        )
        object.__setattr__(self, "_specificity", len(set_fields))
        object.__setattr__(self, "_predicate", _compile_predicate(set_fields))

    # The compiled predicate is a closure, which pickle cannot carry;
    # serialize only the declared fields and recompile on load.
    def __getstate__(self) -> Dict[str, Any]:
        return dict(zip(MATCH_FIELDS, self._key))

    def __setstate__(self, state: Dict[str, Any]) -> None:
        for name in MATCH_FIELDS:
            object.__setattr__(self, name, state.get(name))
        self.__post_init__()

    def key_tuple(self) -> Tuple[Any, ...]:
        """All field values in :data:`MATCH_FIELDS` order (``None`` =
        wildcard); the flow table's exact-match hash index keys on this."""
        return self._key

    def matches(self, headers: Dict[str, Any]) -> bool:
        """Return whether a concrete packet-header dict satisfies this match.

        ``headers`` maps field names to concrete values; missing header keys
        only satisfy wildcarded fields.
        """
        if _fastpath.ENABLED:
            return self._predicate(headers)
        return self._matches_reference(headers)

    def _matches_reference(self, headers: Dict[str, Any]) -> bool:
        """The original introspecting implementation (``ATHENA_FAST_PATH=0``)."""
        for field_ in fields(self):  # athena-lint: disable=ATH601
            wanted = getattr(self, field_.name)  # athena-lint: disable=ATH602
            if wanted is None:
                continue
            if headers.get(field_.name) != wanted:
                return False
        return True

    def is_subset_of(self, other: "Match") -> bool:
        """True if every packet this match accepts, ``other`` also accepts."""
        key = self._key
        for index, theirs in other._set_indexed:
            if key[index] != theirs:
                return False
        return True

    def specificity(self) -> int:
        """Number of concretely matched fields (used for tie-breaking)."""
        return self._specificity

    def to_dict(self) -> Dict[str, Any]:
        """Dict of only the concretely matched fields."""
        return dict(self._set_fields)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Match":
        """Build a match from a dict, rejecting unknown field names."""
        unknown = set(data) - set(MATCH_FIELDS)
        if unknown:
            raise OpenFlowError(f"unknown match fields: {sorted(unknown)}")
        return cls(**data)

    @classmethod
    def exact_from_headers(cls, headers: Dict[str, Any]) -> "Match":
        """Build the exact-match entry for a concrete packet header dict."""
        return cls(**{k: v for k, v in headers.items() if k in MATCH_FIELDS})

    def __str__(self) -> str:
        parts = [f"{k}={v}" for k, v in self.to_dict().items()]
        return "Match(" + ", ".join(parts) + ")" if parts else "Match(*)"
