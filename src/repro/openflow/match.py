"""The OpenFlow match structure.

A :class:`Match` is the 12-tuple-style header match of OpenFlow 1.0 with the
fields Athena's feature catalog indexes on.  ``None`` means wildcard.  The
structure is hashable so flow tables and Athena's per-flow state tables can
key on it directly.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Dict, Optional

from repro.errors import OpenFlowError

#: Names of all matchable fields in precedence-free order.
MATCH_FIELDS = (
    "in_port",
    "eth_src",
    "eth_dst",
    "eth_type",
    "vlan_id",
    "ip_src",
    "ip_dst",
    "ip_proto",
    "ip_tos",
    "tcp_src",
    "tcp_dst",
)


@dataclass(frozen=True)
class Match:
    """An immutable header match; unset fields are wildcards.

    ``tcp_src``/``tcp_dst`` carry the L4 source/destination port for both TCP
    and UDP, mirroring OpenFlow 1.0's ``tp_src``/``tp_dst``.
    """

    in_port: Optional[int] = None
    eth_src: Optional[str] = None
    eth_dst: Optional[str] = None
    eth_type: Optional[int] = None
    vlan_id: Optional[int] = None
    ip_src: Optional[str] = None
    ip_dst: Optional[str] = None
    ip_proto: Optional[int] = None
    ip_tos: Optional[int] = None
    tcp_src: Optional[int] = None
    tcp_dst: Optional[int] = None

    def matches(self, headers: Dict[str, Any]) -> bool:
        """Return whether a concrete packet-header dict satisfies this match.

        ``headers`` maps field names to concrete values; missing header keys
        only satisfy wildcarded fields.
        """
        for field_ in fields(self):
            wanted = getattr(self, field_.name)
            if wanted is None:
                continue
            if headers.get(field_.name) != wanted:
                return False
        return True

    def is_subset_of(self, other: "Match") -> bool:
        """True if every packet this match accepts, ``other`` also accepts."""
        for field_ in fields(self):
            theirs = getattr(other, field_.name)
            if theirs is None:
                continue
            if getattr(self, field_.name) != theirs:
                return False
        return True

    def specificity(self) -> int:
        """Number of concretely matched fields (used for tie-breaking)."""
        return sum(
            1 for field_ in fields(self) if getattr(self, field_.name) is not None
        )

    def to_dict(self) -> Dict[str, Any]:
        """Dict of only the concretely matched fields."""
        return {
            field_.name: getattr(self, field_.name)
            for field_ in fields(self)
            if getattr(self, field_.name) is not None
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Match":
        """Build a match from a dict, rejecting unknown field names."""
        unknown = set(data) - set(MATCH_FIELDS)
        if unknown:
            raise OpenFlowError(f"unknown match fields: {sorted(unknown)}")
        return cls(**data)

    @classmethod
    def exact_from_headers(cls, headers: Dict[str, Any]) -> "Match":
        """Build the exact-match entry for a concrete packet header dict."""
        return cls(**{k: v for k, v in headers.items() if k in MATCH_FIELDS})

    def __str__(self) -> str:
        parts = [f"{k}={v}" for k, v in self.to_dict().items()]
        return "Match(" + ", ".join(parts) + ")" if parts else "Match(*)"
