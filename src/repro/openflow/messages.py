"""OpenFlow control messages.

Each message is a frozen-ish dataclass carrying the fields Athena's Feature
Generator reads.  Transaction ids (``xid``) are explicit because Athena marks
XIDs on the statistics requests *it* issues, to distinguish its own polls
from the controller's background polling when computing variation features.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional

from repro.openflow.actions import Action
from repro.openflow.constants import (
    FlowModCommand,
    FlowRemovedReason,
    MessageType,
    PacketInReason,
    PortReason,
    StatsType,
)
from repro.openflow.match import Match

_xid_counter = itertools.count(1)


def next_xid() -> int:
    """Allocate a process-unique transaction id."""
    return next(_xid_counter)


@dataclass
class OpenFlowMessage:
    """Base class: every message knows its type, dpid of origin/target, xid."""

    dpid: int = 0
    xid: int = field(default_factory=next_xid)

    msg_type: MessageType = MessageType.HELLO

    def size_bytes(self) -> int:
        """Approximate wire size; used by overhead accounting."""
        return 8


@dataclass
class Hello(OpenFlowMessage):
    version: int = 0x04

    def __post_init__(self) -> None:
        self.msg_type = MessageType.HELLO


@dataclass
class EchoRequest(OpenFlowMessage):
    def __post_init__(self) -> None:
        self.msg_type = MessageType.ECHO_REQUEST


@dataclass
class EchoReply(OpenFlowMessage):
    def __post_init__(self) -> None:
        self.msg_type = MessageType.ECHO_REPLY


@dataclass
class FeaturesRequest(OpenFlowMessage):
    def __post_init__(self) -> None:
        self.msg_type = MessageType.FEATURES_REQUEST


@dataclass
class FeaturesReply(OpenFlowMessage):
    n_tables: int = 1
    ports: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.msg_type = MessageType.FEATURES_REPLY


@dataclass
class PacketIn(OpenFlowMessage):
    """A packet punted to the controller (table miss or explicit action)."""

    buffer_id: int = -1
    in_port: int = 0
    reason: PacketInReason = PacketInReason.NO_MATCH
    headers: dict = field(default_factory=dict)
    total_len: int = 0

    def __post_init__(self) -> None:
        self.msg_type = MessageType.PACKET_IN

    def size_bytes(self) -> int:
        return 24 + min(self.total_len, 128)


@dataclass
class PacketOut(OpenFlowMessage):
    """Controller-originated packet injection."""

    buffer_id: int = -1
    in_port: int = 0
    actions: List[Action] = field(default_factory=list)
    headers: dict = field(default_factory=dict)
    total_len: int = 0

    def __post_init__(self) -> None:
        self.msg_type = MessageType.PACKET_OUT

    def size_bytes(self) -> int:
        return 24 + len(self.actions) * 8 + min(self.total_len, 128)


@dataclass
class FlowMod(OpenFlowMessage):
    """Install / modify / delete a flow entry."""

    command: FlowModCommand = FlowModCommand.ADD
    match: Match = field(default_factory=Match)
    priority: int = 0
    actions: List[Action] = field(default_factory=list)
    idle_timeout: float = 0.0
    hard_timeout: float = 0.0
    cookie: int = 0
    app_id: Optional[str] = None
    table_id: int = 0
    out_port: Optional[int] = None
    buffer_id: int = -1

    def __post_init__(self) -> None:
        self.msg_type = MessageType.FLOW_MOD

    def size_bytes(self) -> int:
        return 72 + len(self.actions) * 8


@dataclass
class FlowRemoved(OpenFlowMessage):
    """Notification that a flow entry was evicted (timeout or delete)."""

    match: Match = field(default_factory=Match)
    priority: int = 0
    reason: FlowRemovedReason = FlowRemovedReason.IDLE_TIMEOUT
    duration_sec: float = 0.0
    packet_count: int = 0
    byte_count: int = 0
    cookie: int = 0
    app_id: Optional[str] = None

    def __post_init__(self) -> None:
        self.msg_type = MessageType.FLOW_REMOVED

    def size_bytes(self) -> int:
        return 88


@dataclass
class PortStatus(OpenFlowMessage):
    """Port lifecycle/state change notification."""

    port_no: int = 0
    reason: PortReason = PortReason.MODIFY
    link_up: bool = True

    def __post_init__(self) -> None:
        self.msg_type = MessageType.PORT_STATUS


# --------------------------------------------------------------------------
# Statistics family
# --------------------------------------------------------------------------


@dataclass
class StatsRequest(OpenFlowMessage):
    stats_type: StatsType = StatsType.DESC

    def __post_init__(self) -> None:
        self.msg_type = MessageType.STATS_REQUEST


@dataclass
class FlowStatsRequest(StatsRequest):
    match: Match = field(default_factory=Match)
    table_id: int = 0xFF

    def __post_init__(self) -> None:
        super().__post_init__()
        self.stats_type = StatsType.FLOW


@dataclass
class PortStatsRequest(StatsRequest):
    port_no: Optional[int] = None  # None == all ports

    def __post_init__(self) -> None:
        super().__post_init__()
        self.stats_type = StatsType.PORT


@dataclass
class AggregateStatsRequest(StatsRequest):
    match: Match = field(default_factory=Match)

    def __post_init__(self) -> None:
        super().__post_init__()
        self.stats_type = StatsType.AGGREGATE


@dataclass
class TableStatsRequest(StatsRequest):
    def __post_init__(self) -> None:
        super().__post_init__()
        self.stats_type = StatsType.TABLE


@dataclass
class FlowStatsEntry:
    """One flow's statistics within a FLOW stats reply."""

    match: Match
    priority: int
    duration_sec: float
    packet_count: int
    byte_count: int
    idle_timeout: float = 0.0
    hard_timeout: float = 0.0
    cookie: int = 0
    app_id: Optional[str] = None
    table_id: int = 0


@dataclass
class PortStatsEntry:
    """One port's counters within a PORT stats reply."""

    port_no: int
    rx_packets: int = 0
    tx_packets: int = 0
    rx_bytes: int = 0
    tx_bytes: int = 0
    rx_dropped: int = 0
    tx_dropped: int = 0
    rx_errors: int = 0
    tx_errors: int = 0


@dataclass
class TableStatsEntry:
    """One table's occupancy counters within a TABLE stats reply."""

    table_id: int
    active_count: int = 0
    lookup_count: int = 0
    matched_count: int = 0
    max_entries: int = 65536


@dataclass
class StatsReply(OpenFlowMessage):
    stats_type: StatsType = StatsType.DESC

    def __post_init__(self) -> None:
        self.msg_type = MessageType.STATS_REPLY


@dataclass
class FlowStatsReply(StatsReply):
    entries: List[FlowStatsEntry] = field(default_factory=list)

    def __post_init__(self) -> None:
        super().__post_init__()
        self.stats_type = StatsType.FLOW

    def size_bytes(self) -> int:
        return 16 + 96 * len(self.entries)


@dataclass
class PortStatsReply(StatsReply):
    entries: List[PortStatsEntry] = field(default_factory=list)

    def __post_init__(self) -> None:
        super().__post_init__()
        self.stats_type = StatsType.PORT

    def size_bytes(self) -> int:
        return 16 + 104 * len(self.entries)


@dataclass
class AggregateStatsReply(StatsReply):
    packet_count: int = 0
    byte_count: int = 0
    flow_count: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        self.stats_type = StatsType.AGGREGATE


@dataclass
class TableStatsReply(StatsReply):
    entries: List[TableStatsEntry] = field(default_factory=list)

    def __post_init__(self) -> None:
        super().__post_init__()
        self.stats_type = StatsType.TABLE


@dataclass
class BarrierRequest(OpenFlowMessage):
    def __post_init__(self) -> None:
        self.msg_type = MessageType.BARRIER_REQUEST


@dataclass
class BarrierReply(OpenFlowMessage):
    def __post_init__(self) -> None:
        self.msg_type = MessageType.BARRIER_REPLY
