"""OpenFlow actions.

The simulator supports the action subset the paper's scenarios need: output
to a port (including the CONTROLLER and FLOOD reserved ports), drop, and the
header-rewrite actions the Quarantine reaction uses to redirect suspicious
hosts into a honeynet.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.types import OFPP_CONTROLLER


@dataclass(frozen=True)
class Action:
    """Base class for all actions; concrete subclasses are frozen dataclasses."""

    kind: str = "base"


@dataclass(frozen=True)
class ActionOutput(Action):
    """Forward the packet out of ``port`` (possibly a reserved port)."""

    port: int = 0
    kind: str = "output"


@dataclass(frozen=True)
class ActionController(Action):
    """Punt the packet to the controller (shorthand for output:CONTROLLER)."""

    max_len: int = 128
    kind: str = "controller"

    @property
    def port(self) -> int:
        return OFPP_CONTROLLER


@dataclass(frozen=True)
class ActionDrop(Action):
    """Explicitly drop the packet (empty action list is equivalent)."""

    kind: str = "drop"


@dataclass(frozen=True)
class ActionSetEthSrc(Action):
    """Rewrite the Ethernet source address."""

    mac: str = ""
    kind: str = "set_eth_src"


@dataclass(frozen=True)
class ActionSetEthDst(Action):
    """Rewrite the Ethernet destination address."""

    mac: str = ""
    kind: str = "set_eth_dst"


@dataclass(frozen=True)
class ActionSetIpSrc(Action):
    """Rewrite the IPv4 source address."""

    ip: str = ""
    kind: str = "set_ip_src"


@dataclass(frozen=True)
class ActionSetIpDst(Action):
    """Rewrite the IPv4 destination address (used by Quarantine)."""

    ip: str = ""
    kind: str = "set_ip_dst"
