"""The athena-lint engine.

Walks Python sources with :mod:`ast`, hands each parsed module to a set
of framework-aware checkers, and filters the raw findings through two
suppression layers:

* inline directives — ``# athena-lint: disable=ATH101`` on the flagged
  line (comma-separated rule ids, or no ``=RULE`` part to silence the
  whole line), and ``# athena-lint: disable-file=ATH2`` anywhere in the
  file to silence a rule family file-wide;
* the ``[tool.athena-lint]`` pyproject config (path excludes and
  per-path rule disables, see :mod:`repro.analysis.config`).

Checkers subclass :class:`Checker` and yield :class:`Finding` objects;
the engine owns ordering, deduplication, and suppression so checkers
stay pure AST visitors.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.config import LintConfig
from repro.analysis.findings import Finding, Severity

#: Matches one inline suppression directive in a source line.
_DIRECTIVE_RE = re.compile(
    r"#\s*athena-lint:\s*(?P<kind>disable-file|disable)"
    r"(?:\s*=\s*(?P<rules>[A-Za-z0-9_,\s-]+))?"
)

#: Sentinel rule set meaning "every rule".
_ALL_RULES = ("*",)


def _parse_directives(source: str) -> Tuple[Dict[int, Tuple[str, ...]], Tuple[str, ...]]:
    """Extract line-scoped and file-scoped suppressions from source text.

    Returns ``(line -> rule ids, file-wide rule ids)`` where ``("*",)``
    means every rule.  Comment parsing is intentionally line-based: the
    AST has no comments, and a directive only ever applies to the
    physical line carrying it.
    """
    per_line: Dict[int, Tuple[str, ...]] = {}
    file_wide: List[str] = []
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _DIRECTIVE_RE.search(text)
        if match is None:
            continue
        raw = match.group("rules")
        rules = (
            tuple(r.strip() for r in raw.split(",") if r.strip())
            if raw
            else _ALL_RULES
        )
        if match.group("kind") == "disable-file":
            file_wide.extend(rules)
        else:
            per_line[lineno] = rules
    return per_line, tuple(file_wide)


def _rule_matches(rule: str, patterns: Iterable[str]) -> bool:
    return any(pattern == "*" or rule.startswith(pattern) for pattern in patterns)


@dataclass
class ParsedModule:
    """One source file, parsed and ready for checking."""

    path: str  # path as given on the command line / engine call
    relpath: str  # "/"-separated path relative to the lint root
    source: str
    tree: ast.AST

    @classmethod
    def parse(cls, path: str, root: str = ".") -> "ParsedModule":
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        return cls.from_source(source, path, root=root)

    @classmethod
    def from_source(cls, source: str, path: str, root: str = ".") -> "ParsedModule":
        try:
            relpath = os.path.relpath(path, root)
        except ValueError:  # different drive on Windows
            relpath = path
        return cls(
            path=path,
            relpath=relpath.replace(os.sep, "/"),
            source=source,
            tree=ast.parse(source, filename=path),
        )


class Checker:
    """Base class for one lint pass over a parsed module.

    Subclasses set ``name`` and ``rules`` (rule id -> one-line
    description) and implement :meth:`check`.  A checker never worries
    about suppression or ordering — it just yields findings.
    """

    name: str = "base"
    rules: Dict[str, str] = {}

    def check(self, module: ParsedModule) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(
        self,
        module: ParsedModule,
        node: ast.AST,
        rule: str,
        message: str,
        severity: Severity = Severity.ERROR,
    ) -> Finding:
        """Build a finding anchored at an AST node."""
        return Finding(
            path=module.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=rule,
            message=message,
            checker=self.name,
            severity=severity,
        )


@dataclass
class LintReport:
    """The outcome of one engine run."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    files_skipped: int = 0
    parse_errors: List[str] = field(default_factory=list)

    @property
    def error_count(self) -> int:
        return sum(1 for f in self.findings if f.severity is Severity.ERROR)

    @property
    def warning_count(self) -> int:
        return sum(1 for f in self.findings if f.severity is Severity.WARNING)

    @property
    def failed(self) -> bool:
        """Whether the run should exit non-zero."""
        return bool(self.error_count or self.parse_errors)

    def by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))


class LintEngine:
    """Collects files, runs checkers, applies suppressions."""

    def __init__(
        self,
        checkers: Sequence[Checker],
        config: Optional[LintConfig] = None,
        root: str = ".",
    ) -> None:
        self.checkers = list(checkers)
        self.config = config or LintConfig()
        self.root = root

    # -- file collection ----------------------------------------------------

    def collect_files(self, paths: Sequence[str]) -> List[str]:
        """Expand files and directories into a sorted list of .py files."""
        collected: Set[str] = set()
        for path in paths:
            if os.path.isdir(path):
                for dirpath, dirnames, filenames in os.walk(path):
                    dirnames[:] = sorted(
                        d for d in dirnames if d not in ("__pycache__", ".git")
                    )
                    for filename in sorted(filenames):
                        if filename.endswith(".py"):
                            collected.add(os.path.join(dirpath, filename))
            elif path.endswith(".py"):
                collected.add(path)
        return sorted(collected)

    # -- the run ------------------------------------------------------------

    def run(self, paths: Sequence[str]) -> LintReport:
        report = LintReport()
        for filepath in self.collect_files(paths):
            relpath = os.path.relpath(filepath, self.root).replace(os.sep, "/")
            if self.config.is_excluded(relpath):
                report.files_skipped += 1
                continue
            try:
                module = ParsedModule.parse(filepath, root=self.root)
            except (OSError, SyntaxError) as exc:
                report.parse_errors.append(f"{relpath}: {exc}")
                continue
            report.files_checked += 1
            report.findings.extend(self.check_module(module))
        report.findings.sort(key=Finding.sort_key)
        return report

    def check_module(self, module: ParsedModule) -> List[Finding]:
        """Run every checker over one module and filter suppressions."""
        per_line, file_wide = _parse_directives(module.source)
        kept: List[Finding] = []
        seen: Set[tuple] = set()
        for checker in self.checkers:
            for finding in checker.check(module):
                if finding.sort_key() + (finding.message,) in seen:
                    continue
                seen.add(finding.sort_key() + (finding.message,))
                if _rule_matches(finding.rule, file_wide):
                    continue
                if _rule_matches(finding.rule, per_line.get(finding.line, ())):
                    continue
                if self.config.is_rule_disabled(module.relpath, finding.rule):
                    continue
                kept.append(finding)
        return kept

    def rule_catalog(self) -> Dict[str, str]:
        """rule id -> description across all registered checkers."""
        catalog: Dict[str, str] = {}
        for checker in self.checkers:
            catalog.update(checker.rules)
        return dict(sorted(catalog.items()))
