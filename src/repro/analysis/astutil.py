"""Small AST helpers shared by the athena-lint checkers."""

from __future__ import annotations

import ast
from typing import Dict, List, Optional


def dotted_name(node: ast.AST) -> Optional[str]:
    """Render a ``Name``/``Attribute`` chain as ``a.b.c``, or None.

    Chains rooted in anything but a plain name (a call result, a
    subscript) return None — the checkers only reason about names they
    can resolve through imports.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


class ImportMap(ast.NodeVisitor):
    """Tracks what module/object each top-level alias refers to.

    After ``visit(tree)``, :attr:`aliases` maps the local name to the
    fully-qualified origin: ``import numpy as np`` yields
    ``{"np": "numpy"}``; ``from datetime import datetime as dt`` yields
    ``{"dt": "datetime.datetime"}``.
    """

    def __init__(self) -> None:
        self.aliases: Dict[str, str] = {}

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.aliases[alias.asname or alias.name.split(".")[0]] = (
                alias.name if alias.asname else alias.name.split(".")[0]
            )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is None or node.level:  # relative imports stay local
            return
        for alias in node.names:
            if alias.name == "*":
                continue
            self.aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
        self.generic_visit(node)

    def resolve(self, dotted: str) -> str:
        """Expand the first segment of ``dotted`` through the alias map."""
        head, _, rest = dotted.partition(".")
        origin = self.aliases.get(head)
        if origin is None:
            return dotted
        return f"{origin}.{rest}" if rest else origin


def import_map(tree: ast.AST) -> ImportMap:
    mapper = ImportMap()
    mapper.visit(tree)
    return mapper


def string_value(node: ast.AST) -> Optional[str]:
    """The value of a string-literal node, else None."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def string_elements(node: ast.AST) -> List[ast.Constant]:
    """String-literal elements of a list/tuple/set literal."""
    if not isinstance(node, (ast.List, ast.Tuple, ast.Set)):
        return []
    return [
        element
        for element in node.elts
        if isinstance(element, ast.Constant) and isinstance(element.value, str)
    ]
