"""athena-lint: framework-aware static analysis for the reproduction.

An AST-based lint engine plus four checkers enforcing the invariants the
configuration-based framework cannot express in Python's type system:

* **ATH1xx determinism** — timestamps and randomness must route through
  ``simkernel`` so a run replays from one root seed;
* **ATH2xx feature names** — string literals in query/preprocessor/
  detector configuration must resolve against ``FEATURE_CATALOG``;
* **ATH3xx northbound API** — core NB call sites must match the real
  ``AthenaNorthbound`` signatures and name registered algorithms;
* **ATH4xx OpenFlow codec** — message classes, the codec registry, and
  the protocol constants must stay in lockstep.

Run it as ``python -m repro.cli lint src/repro examples benchmarks``;
see ``docs/ANALYSIS.md`` for every rule and the suppression syntax.
"""

from repro.analysis.checkers import (
    DeterminismChecker,
    FeatureNameChecker,
    NorthboundChecker,
    OpenFlowCodecChecker,
    default_checkers,
)
from repro.analysis.config import LintConfig, find_pyproject, load_config
from repro.analysis.engine import Checker, LintEngine, LintReport, ParsedModule
from repro.analysis.findings import SCHEMA_VERSION, Finding, Severity
from repro.analysis.reporters import JsonReporter, TextReporter

__all__ = [
    "Checker",
    "DeterminismChecker",
    "FeatureNameChecker",
    "Finding",
    "JsonReporter",
    "LintConfig",
    "LintEngine",
    "LintReport",
    "NorthboundChecker",
    "OpenFlowCodecChecker",
    "ParsedModule",
    "SCHEMA_VERSION",
    "Severity",
    "TextReporter",
    "default_checkers",
    "find_pyproject",
    "load_config",
]
