"""ATH3xx — northbound-API misuse.

The eight core NB functions are the entire programming surface of an
Athena application, and Python only validates their call shapes at run
time — midway through an experiment.  This checker introspects the real
:class:`~repro.core.northbound.AthenaNorthbound` signatures (so it can
never drift from the code) and verifies every call site that uses a core
name, in either Python style (``request_features``) or the paper's
PascalCase (``RequestFeatures``).  Algorithm names handed to
``GenerateAlgorithm`` / ``create_algorithm`` / ``Algorithm(name=...)``
are resolved against :mod:`repro.ml.registry` the same way the Detector
Manager will resolve them later.
"""

from __future__ import annotations

import ast
import difflib
import inspect
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.analysis.astutil import string_value
from repro.analysis.engine import Checker, ParsedModule
from repro.analysis.findings import Finding

#: Callables whose first argument is a registry algorithm name.
_ALGORITHM_CALLS = {"GenerateAlgorithm", "create_algorithm"}


def _core_signatures() -> Dict[str, Tuple[Set[str], int]]:
    """name -> (acceptable keyword names, max positional args).

    Built from the live class via :func:`inspect.signature`; both the
    snake_case methods and their paper-style aliases land in the map.
    """
    from repro.core.northbound import AthenaNorthbound

    signatures: Dict[str, Tuple[Set[str], int]] = {}
    for paper_name in AthenaNorthbound.core_api_names():
        func = getattr(AthenaNorthbound, paper_name)
        parameters = [
            p
            for p in inspect.signature(func).parameters.values()
            if p.name != "self"
        ]
        keywords = {
            p.name
            for p in parameters
            if p.kind
            in (inspect.Parameter.POSITIONAL_OR_KEYWORD, inspect.Parameter.KEYWORD_ONLY)
        }
        max_positional = sum(
            1
            for p in parameters
            if p.kind
            in (
                inspect.Parameter.POSITIONAL_ONLY,
                inspect.Parameter.POSITIONAL_OR_KEYWORD,
            )
        )
        spec = (keywords, max_positional)
        signatures[paper_name] = spec
        signatures[func.__name__] = spec  # the snake_case original
    return signatures


def _registry_names() -> List[str]:
    from repro.ml.registry import list_algorithms

    return list_algorithms()


def _is_known_algorithm(name: str) -> bool:
    from repro.ml.registry import _normalise, _REGISTRY

    return _normalise(name) in _REGISTRY


class NorthboundChecker(Checker):
    """Verifies core NB call shapes and registry algorithm names."""

    name = "northbound"
    rules = {
        "ATH301": "unknown keyword argument to a core NB API",
        "ATH302": "too many positional arguments to a core NB API",
        "ATH303": "unknown algorithm name (not in repro.ml.registry)",
    }

    def __init__(self) -> None:
        self._signatures = _core_signatures()

    def check(self, module: ParsedModule) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            findings.extend(self._check_nb_call(module, node))
            findings.extend(self._check_algorithm_name(module, node))
        return findings

    # -- core NB call shapes -------------------------------------------------

    def _check_nb_call(self, module: ParsedModule, node: ast.Call) -> Iterator[Finding]:
        if not isinstance(node.func, ast.Attribute):
            return  # only method-style calls: nb.RequestFeatures(...)
        spec = self._signatures.get(node.func.attr)
        if spec is None:
            return
        keywords, max_positional = spec
        for keyword in node.keywords:
            if keyword.arg is None:  # **kwargs forwarding — not checkable
                continue
            if keyword.arg not in keywords:
                nearest = difflib.get_close_matches(
                    keyword.arg, sorted(keywords), n=1, cutoff=0.6
                )
                hint = f"; did you mean {nearest[0]!r}?" if nearest else ""
                yield self.finding(
                    module,
                    keyword.value,
                    "ATH301",
                    f"{node.func.attr}() has no keyword {keyword.arg!r} "
                    f"(accepts {sorted(keywords)}){hint}",
                )
        positional = [arg for arg in node.args if not isinstance(arg, ast.Starred)]
        if len(positional) > max_positional and len(positional) == len(node.args):
            yield self.finding(
                module,
                node,
                "ATH302",
                f"{node.func.attr}() takes at most {max_positional} "
                f"positional arguments, got {len(positional)}",
            )

    # -- algorithm names ------------------------------------------------------

    def _check_algorithm_name(
        self, module: ParsedModule, node: ast.Call
    ) -> Iterator[Finding]:
        callee = (
            node.func.id
            if isinstance(node.func, ast.Name)
            else node.func.attr
            if isinstance(node.func, ast.Attribute)
            else None
        )
        if callee is None:
            return
        target: Optional[ast.AST] = None
        if callee in _ALGORITHM_CALLS:
            target = node.args[0] if node.args else None
            for keyword in node.keywords:
                if keyword.arg == "name":
                    target = keyword.value
        elif callee == "Algorithm":
            for keyword in node.keywords:
                if keyword.arg == "name":
                    target = keyword.value
            if target is None and node.args:
                target = node.args[0]
        if target is None:
            return
        algorithm = string_value(target)
        if algorithm is None or _is_known_algorithm(algorithm):
            return
        nearest = difflib.get_close_matches(
            algorithm, _registry_names(), n=1, cutoff=0.5
        )
        hint = f"; did you mean {nearest[0]!r}?" if nearest else ""
        yield self.finding(
            module,
            target,
            "ATH303",
            f"algorithm {algorithm!r} is not registered in repro.ml.registry "
            f"(known: {', '.join(_registry_names())}){hint}",
        )
