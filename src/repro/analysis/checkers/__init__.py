"""The framework-aware checkers shipped with athena-lint."""

from __future__ import annotations

from typing import List

from repro.analysis.checkers.determinism import DeterminismChecker
from repro.analysis.checkers.features import FeatureNameChecker
from repro.analysis.checkers.hotpath import HotpathChecker
from repro.analysis.checkers.northbound import NorthboundChecker
from repro.analysis.checkers.openflow_codec import OpenFlowCodecChecker
from repro.analysis.checkers.telemetry import TelemetryChecker
from repro.analysis.engine import Checker

__all__ = [
    "DeterminismChecker",
    "FeatureNameChecker",
    "HotpathChecker",
    "NorthboundChecker",
    "OpenFlowCodecChecker",
    "TelemetryChecker",
    "default_checkers",
]


def default_checkers() -> List[Checker]:
    """One instance of every shipped checker, in rule-id order."""
    return [
        DeterminismChecker(),
        FeatureNameChecker(),
        NorthboundChecker(),
        OpenFlowCodecChecker(),
        TelemetryChecker(),
        HotpathChecker(),
    ]
