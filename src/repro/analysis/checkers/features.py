"""ATH2xx — the feature-name validator.

Athena applications are *configuration*: they name catalog features in
query constraints, preprocessor configs, and detector feature lists.  A
misspelled name is not a syntax error anywhere — the query just matches
nothing and the detector trains on zeros — so this checker resolves
every string literal in a feature-name position against the live
:data:`~repro.core.features.catalog.FEATURE_CATALOG` (which includes the
derived ``*_VAR`` siblings) and suggests the nearest real name.

Feature-name positions covered:

* ``Condition(fieldname, op, value)`` and the ``where`` family
  (``where`` / ``and_where`` / ``or_where``), plus ``sort_by`` and the
  folded field of ``aggregate``;
* textual constraint strings handed to ``Query`` / ``GenerateQuery`` /
  ``q_text`` / ``parse_constraints`` (fieldnames are the tokens left of
  a comparison operator);
* preprocessor configs: ``features=`` lists, ``weights=`` dict keys,
  ``add`` / ``add_all`` / ``set_weight`` calls, and the ``with_weights``
  utility;
* streaming detector registrations: the ``features`` list of
  ``register_detector`` (``repro.streaming``);
* module-level ``*_FEATURES`` list constants (detector configs).

Only names that *look like* catalog names (``UPPER_SNAKE``) resolve
against the catalog; lowercase names in definite fieldname positions
are checked against the feature format's index keys as a warning.
"""

from __future__ import annotations

import ast
import difflib
import re
from typing import Iterable, Iterator, List, Optional

from repro.analysis.astutil import string_elements, string_value
from repro.analysis.engine import Checker, ParsedModule
from repro.analysis.findings import Finding, Severity
from repro.core.feature_format import INDEX_KEYS
from repro.core.features.catalog import FEATURE_CATALOG

#: Methods whose first argument is a fieldname.
_FIELDNAME_METHODS = {"where", "and_where", "or_where", "sort_by", "set_weight"}

#: Callables whose first argument is a textual constraint string.
_TEXTUAL_QUERY_CALLS = {"Query", "GenerateQuery", "q_text", "parse_constraints"}

#: Callables taking a ``features=`` sequence and/or ``weights=`` mapping.
_PREPROCESSOR_CALLS = {
    "Preprocessor",
    "GeneratePreprocessor",
    "preprocessor",
    "normalized_minmax",
    "normalized_standard",
}

#: Fieldname tokens are whatever sits left of a comparison operator.
_TEXT_FIELD_RE = re.compile(r"([A-Za-z_][\w]*)\s*(?:>=|<=|==|!=|>|<)")

#: A name that claims to be a catalog feature.
_FEATURE_LIKE_RE = re.compile(r"[A-Z][A-Z0-9_]{2,}")

#: Fields legitimate in queries besides the catalog: index/meta keys and
#: the aggregation group key.
_KNOWN_INDEX_FIELDS = frozenset(INDEX_KEYS) | {"_id"}


class FeatureNameChecker(Checker):
    """Resolves configured feature names against the catalog."""

    name = "features"
    rules = {
        "ATH201": "unknown feature name (not in FEATURE_CATALOG, "
        "including *_VAR siblings)",
        "ATH202": "unknown index field in a query constraint "
        "(not in the feature format's INDEX_KEYS)",
    }

    def check(self, module: ParsedModule) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                findings.extend(self._check_call(module, node))
            elif isinstance(node, ast.Assign):
                findings.extend(self._check_feature_list_constant(module, node))
        return findings

    # -- call sites ---------------------------------------------------------

    def _check_call(self, module: ParsedModule, node: ast.Call) -> Iterator[Finding]:
        callee = self._callee_name(node)
        if callee is None:
            return
        if callee in _FIELDNAME_METHODS or callee == "Condition":
            yield from self._check_fieldname_arg(module, node)
        elif callee == "aggregate":
            yield from self._check_aggregate(module, node)
        elif callee in ("add", "add_all"):
            yield from self._check_add(module, node)
        elif callee in _TEXTUAL_QUERY_CALLS:
            yield from self._check_textual_query(module, node)
        elif callee in _PREPROCESSOR_CALLS or callee == "with_weights":
            yield from self._check_preprocessor(module, node, callee)
        elif callee == "register_detector":
            yield from self._check_register_detector(module, node)

    @staticmethod
    def _callee_name(node: ast.Call) -> Optional[str]:
        if isinstance(node.func, ast.Attribute):
            return node.func.attr
        if isinstance(node.func, ast.Name):
            return node.func.id
        return None

    def _check_fieldname_arg(
        self, module: ParsedModule, node: ast.Call
    ) -> Iterator[Finding]:
        target = node.args[0] if node.args else None
        for keyword in node.keywords:
            if keyword.arg == "fieldname":
                target = keyword.value
        if target is None:
            return
        name = string_value(target)
        if name is not None:
            yield from self._validate(module, target, name, definite_field=True)

    def _check_aggregate(
        self, module: ParsedModule, node: ast.Call
    ) -> Iterator[Finding]:
        # aggregate(group_by, fieldname, func): group keys are index
        # fields, the folded field is usually a catalog feature.
        if node.args:
            for element in string_elements(node.args[0]):
                yield from self._validate(module, element, element.value)
        if len(node.args) > 1:
            name = string_value(node.args[1])
            if name is not None:
                yield from self._validate(module, node.args[1], name)
        for keyword in node.keywords:
            if keyword.arg == "fieldname":
                name = string_value(keyword.value)
                if name is not None:
                    yield from self._validate(module, keyword.value, name)

    def _check_add(self, module: ParsedModule, node: ast.Call) -> Iterator[Finding]:
        # .add("NAME") / .add_all(["NAME", ...]) appear on many types, so
        # only catalog-looking strings are considered at all.
        if not node.args:
            return
        name = string_value(node.args[0])
        if name is not None:
            yield from self._validate(module, node.args[0], name)
        for element in string_elements(node.args[0]):
            yield from self._validate(module, element, element.value)

    def _check_textual_query(
        self, module: ParsedModule, node: ast.Call
    ) -> Iterator[Finding]:
        if not node.args:
            return
        text = string_value(node.args[0])
        if text is None:
            return
        for fieldname in _TEXT_FIELD_RE.findall(text):
            yield from self._validate(
                module, node.args[0], fieldname, definite_field=True
            )

    def _check_preprocessor(
        self, module: ParsedModule, node: ast.Call, callee: str
    ) -> Iterator[Finding]:
        positional_features: Optional[ast.AST] = None
        if callee in ("preprocessor", "normalized_minmax", "normalized_standard"):
            positional_features = node.args[0] if node.args else None
        if callee == "with_weights" and len(node.args) > 1:
            yield from self._check_weights(module, node.args[1])
        if positional_features is not None:
            for element in string_elements(positional_features):
                yield from self._validate(module, element, element.value)
        for keyword in node.keywords:
            if keyword.arg == "features":
                for element in string_elements(keyword.value):
                    yield from self._validate(module, element, element.value)
            elif keyword.arg == "weights":
                yield from self._check_weights(module, keyword.value)

    def _check_register_detector(
        self, module: ParsedModule, node: ast.Call
    ) -> Iterator[Finding]:
        # StreamingDetectorManager.register_detector(name, learner,
        # features, ...): the features list names catalog entries.
        target: Optional[ast.AST] = node.args[2] if len(node.args) > 2 else None
        for keyword in node.keywords:
            if keyword.arg == "features":
                target = keyword.value
        if target is None:
            return
        for element in string_elements(target):
            yield from self._validate(module, element, element.value)

    def _check_weights(self, module: ParsedModule, node: ast.AST) -> Iterator[Finding]:
        if not isinstance(node, ast.Dict):
            return
        for key in node.keys:
            if key is None:
                continue
            name = string_value(key)
            if name is not None:
                yield from self._validate(module, key, name)

    # -- detector config constants -------------------------------------------

    def _check_feature_list_constant(
        self, module: ParsedModule, node: ast.Assign
    ) -> Iterator[Finding]:
        named_features = any(
            isinstance(target, ast.Name) and target.id.endswith("_FEATURES")
            for target in node.targets
        )
        if not named_features:
            return
        for element in string_elements(node.value):
            yield from self._validate(module, element, element.value)

    # -- resolution ---------------------------------------------------------

    def _validate(
        self,
        module: ParsedModule,
        node: ast.AST,
        name: str,
        definite_field: bool = False,
    ) -> Iterator[Finding]:
        if _FEATURE_LIKE_RE.fullmatch(name):
            if name in FEATURE_CATALOG or name in _KNOWN_INDEX_FIELDS:
                return
            nearest = FEATURE_CATALOG.suggest(name)
            hint = f"; did you mean {nearest!r}?" if nearest else ""
            yield self.finding(
                module,
                node,
                "ATH201",
                f"unknown feature {name!r} is not in FEATURE_CATALOG{hint}",
            )
        elif definite_field and re.fullmatch(r"[a-z_][a-z0-9_]*", name):
            if name in _KNOWN_INDEX_FIELDS:
                return
            nearest = difflib.get_close_matches(
                name, sorted(_KNOWN_INDEX_FIELDS), n=1, cutoff=0.6
            )
            hint = f"; did you mean {nearest[0]!r}?" if nearest else ""
            yield self.finding(
                module,
                node,
                "ATH202",
                f"unknown index field {name!r} is not in the feature "
                f"format's INDEX_KEYS{hint}",
                severity=Severity.WARNING,
            )
