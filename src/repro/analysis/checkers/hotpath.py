"""ATH6xx — hot-path discipline.

Modules marked with a ``# athena-lint: hot-path`` comment sit on the
packet/query fast path (docs/PERF.md): ``repro.openflow.match``,
``repro.dataplane.flowtable``, and the distdb read path.  The overhaul
that made them fast moved reflection to construction time — a match
compiles its predicate once, a flow entry indexes itself once.  This
checker keeps per-call reflection from creeping back in:

* ``ATH601`` — ``dataclasses.fields()`` called at request time.  Field
  introspection costs a dict build per call; hot code must hoist it to
  import or construction time (``__init__`` / ``__post_init__`` /
  ``__setstate__`` are exempt, as is module level).
* ``ATH602`` — ``getattr()`` / ``setattr()`` inside a loop.  A dynamic
  attribute lookup per iteration is the pattern the compiled-match
  rewrite removed; unroll it or precompute a tuple.
* ``ATH603`` — per-row dict construction inside a loop or comprehension,
  in modules marked ``# athena-lint: hot-path columnar``.  The columnar
  batch path exists so bulk data moves as numpy columns; a dict built
  per row re-creates the document churn it replaced.

Deliberately kept reference implementations carry an inline
``# athena-lint: disable=ATH601`` so the slow path stays honest.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, List

from repro.analysis.astutil import dotted_name, import_map
from repro.analysis.engine import Checker, ParsedModule
from repro.analysis.findings import Finding

#: The opt-in marker; modules without it are never checked.
_HOT_MARKER_RE = re.compile(r"#\s*athena-lint:\s*hot-path\b")

#: The stricter columnar variant additionally opts into ATH603.
_COLUMNAR_MARKER_RE = re.compile(r"#\s*athena-lint:\s*hot-path\s+columnar\b")

#: Construction-time methods where one-off introspection is fine.
_CONSTRUCTION_FUNCS = {"__init__", "__post_init__", "__setstate__", "__init_subclass__"}

_LOOP_NODES = (ast.For, ast.While, ast.AsyncFor)
_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def is_hot_module(module: ParsedModule) -> bool:
    """Whether the module opted into hot-path checking via the marker."""
    return _HOT_MARKER_RE.search(module.source) is not None


def is_columnar_module(module: ParsedModule) -> bool:
    """Whether the module opted into the columnar (ATH603) tier."""
    return _COLUMNAR_MARKER_RE.search(module.source) is not None


def _own_nodes(func: ast.AST) -> Iterable[ast.AST]:
    """Yield the nodes of ``func``'s body, not descending into nested defs."""
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, _FUNC_NODES):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


class HotpathChecker(Checker):
    """Flags per-call reflection in modules marked ``hot-path``."""

    name = "hotpath"
    rules = {
        "ATH601": "dataclasses.fields() on a hot path; introspect once at "
        "construction time, not per call",
        "ATH602": "getattr()/setattr() inside a loop on a hot path; "
        "precompute the attribute tuple at construction time",
        "ATH603": "per-row dict construction in a columnar hot-path "
        "module; keep bulk data in numpy columns",
    }

    def check(self, module: ParsedModule) -> Iterable[Finding]:
        if not is_hot_module(module):
            return []
        columnar = is_columnar_module(module)
        imports = import_map(module.tree)
        findings: List[Finding] = []
        for func in ast.walk(module.tree):
            if not isinstance(func, _FUNC_NODES):
                continue
            if func.name in _CONSTRUCTION_FUNCS:
                # One-off construction work; reflection there is the fix,
                # not the problem.  (Nested defs are judged by their own
                # name when the outer walk reaches them.)
                continue
            for node in _own_nodes(func):
                if self._is_fields_call(node, imports):
                    findings.append(
                        self.finding(
                            module,
                            node,
                            "ATH601",
                            "dataclasses.fields() runs per call here; hoist "
                            "the introspection to construction time "
                            "(__post_init__) or module level",
                        )
                    )
                if isinstance(node, _LOOP_NODES):
                    findings.extend(self._check_loop(module, node))
            if columnar:
                findings.extend(self._check_row_dicts(module, func))
        return findings

    @staticmethod
    def _is_fields_call(node: ast.AST, imports) -> bool:
        if not isinstance(node, ast.Call):
            return False
        dotted = dotted_name(node.func)
        if dotted is None:
            return False
        return imports.resolve(dotted) == "dataclasses.fields"

    def _check_loop(self, module: ParsedModule, loop: ast.AST) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(loop):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted in ("getattr", "setattr"):
                findings.append(
                    self.finding(
                        module,
                        node,
                        "ATH602",
                        f"{dotted}() inside a loop on a hot path; precompute "
                        "the (name, value) tuple at construction time",
                    )
                )
        return findings

    _PER_ROW_CONTEXTS = _LOOP_NODES + (
        ast.ListComp,
        ast.SetComp,
        ast.GeneratorExp,
        ast.DictComp,
    )

    @staticmethod
    def _is_dict_construction(node: ast.AST) -> bool:
        if isinstance(node, (ast.Dict, ast.DictComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and dotted_name(node.func) == "dict"
        )

    def _check_row_dicts(self, module: ParsedModule, func: ast.AST) -> List[Finding]:
        """ATH603: dicts built once per iteration in a columnar module.

        Any ``{...}`` literal, ``dict(...)`` call, or dict comprehension
        *inside* a loop or comprehension body executes per row; the
        columnar contract says bulk rows travel as arrays.  Each offending
        construction is flagged once, however deeply contexts nest.
        """
        flagged: dict = {}
        for context in _own_nodes(func):
            if not isinstance(context, self._PER_ROW_CONTEXTS):
                continue
            for node in ast.walk(context):
                if node is context:
                    continue
                if self._is_dict_construction(node) and id(node) not in flagged:
                    flagged[id(node)] = node
        return [
            self.finding(
                module,
                node,
                "ATH603",
                "dict constructed per row in a columnar hot-path module; "
                "move the data into frame columns (or copy only post-limit "
                "survivors)",
            )
            for node in flagged.values()
        ]
