"""ATH4xx — OpenFlow codec invariants.

The binary codec in ``openflow/serialization.py`` must stay in lockstep
with the message dataclasses in ``openflow/messages.py`` and the enums
in ``openflow/constants.py``: a message class without pack/unpack
support only fails when the first instance crosses the wire, usually
deep inside a Cbench run.  This checker is cross-file — it fires when it
sees ``serialization.py`` inside an ``openflow`` package, reads the two
sibling modules from disk, and verifies statically (AST only, nothing
imported) that:

* every concrete message class is registered in ``CODEC_REGISTRY``
  (ATH401) and constructed somewhere on the unpack path (ATH402);
* every ``CODEC_REGISTRY`` entry names a real message class (ATH401)
  whose registered wire type matches the class's declared ``msg_type``
  (ATH404);
* every ``Enum.MEMBER`` reference in either module exists in the enums
  ``constants.py`` actually defines (ATH403).
"""

from __future__ import annotations

import ast
import os
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.analysis.astutil import dotted_name
from repro.analysis.engine import Checker, ParsedModule
from repro.analysis.findings import Finding

#: Classes that exist only to carry shared fields; never wire-encoded.
_ABSTRACT = {"OpenFlowMessage", "StatsRequest", "StatsReply"}

_ROOT_CLASS = "OpenFlowMessage"


def _class_defs(tree: ast.AST) -> Dict[str, ast.ClassDef]:
    return {
        node.name: node
        for node in ast.walk(tree)
        if isinstance(node, ast.ClassDef)
    }


def _message_classes(classes: Dict[str, ast.ClassDef]) -> Set[str]:
    """Names of (direct or transitive) OpenFlowMessage subclasses."""

    def descends(name: str, seen: Set[str]) -> bool:
        if name == _ROOT_CLASS:
            return True
        node = classes.get(name)
        if node is None or name in seen:
            return False
        seen.add(name)
        return any(
            isinstance(base, ast.Name) and descends(base.id, seen)
            for base in node.bases
        )

    return {name for name in classes if descends(name, set())}


def _declared_msg_types(
    classes: Dict[str, ast.ClassDef], message_names: Set[str]
) -> Dict[str, str]:
    """class name -> ``MessageType.X`` it assigns to ``self.msg_type``,
    following the single-inheritance chain for stats subclasses."""

    own: Dict[str, str] = {}
    for name in message_names:
        for node in ast.walk(classes[name]):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and target.attr == "msg_type"
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    dotted = dotted_name(node.value)
                    if dotted and dotted.startswith("MessageType."):
                        own[name] = dotted

    def inherited(name: str) -> Optional[str]:
        if name in own:
            return own[name]
        node = classes.get(name)
        if node is None:
            return None
        for base in node.bases:
            if isinstance(base, ast.Name):
                found = inherited(base.id)
                if found:
                    return found
        return None

    return {name: value for name in message_names if (value := inherited(name))}


def _enum_references(tree: ast.AST, enum_names: Set[str]) -> List[Tuple[str, str, int]]:
    """Every ``EnumName.MEMBER`` attribute access: (enum, member, line)."""
    references = []
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id in enum_names
        ):
            references.append((node.value.id, node.attr, node.lineno))
    return references


def _enum_members(tree: ast.AST) -> Dict[str, Set[str]]:
    """Enum class name -> member names, for classes based on IntEnum/Enum."""
    members: Dict[str, Set[str]] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        bases = {base.id for base in node.bases if isinstance(base, ast.Name)}
        if not bases & {"Enum", "IntEnum", "IntFlag", "Flag"}:
            continue
        members[node.name] = {
            target.id
            for statement in node.body
            if isinstance(statement, ast.Assign)
            for target in statement.targets
            if isinstance(target, ast.Name)
        }
    return members


class OpenFlowCodecChecker(Checker):
    """Cross-checks messages.py / serialization.py / constants.py."""

    name = "openflow-codec"
    rules = {
        "ATH401": "message class and CODEC_REGISTRY disagree "
        "(unregistered class, or registry entry without a class)",
        "ATH402": "registered message class is never constructed on the "
        "unpack path of serialization.py",
        "ATH403": "enum member referenced but not defined in constants.py",
        "ATH404": "CODEC_REGISTRY wire type disagrees with the class's "
        "declared msg_type",
    }

    def check(self, module: ParsedModule) -> Iterable[Finding]:
        if os.path.basename(module.path) != "serialization.py":
            return []
        package_dir = os.path.dirname(os.path.abspath(module.path))
        if os.path.basename(package_dir) != "openflow":
            return []
        siblings = {}
        rel_dir = os.path.dirname(module.relpath)
        for stem in ("messages", "constants"):
            sibling_path = os.path.join(package_dir, f"{stem}.py")
            if not os.path.isfile(sibling_path):
                return []  # not the codec trio this checker understands
            with open(sibling_path, "r", encoding="utf-8") as handle:
                source = handle.read()
            siblings[stem] = ParsedModule(
                path=sibling_path,
                relpath=f"{rel_dir}/{stem}.py" if rel_dir else f"{stem}.py",
                source=source,
                tree=ast.parse(source, filename=sibling_path),
            )
        return list(self._check_trio(module, siblings["messages"], siblings["constants"]))

    # -- the cross-file analysis ----------------------------------------------

    def _check_trio(
        self,
        serialization: ParsedModule,
        messages: ParsedModule,
        constants: ParsedModule,
    ) -> Iterator[Finding]:
        message_classes = _class_defs(messages.tree)
        concrete = _message_classes(message_classes) - _ABSTRACT
        declared_types = _declared_msg_types(message_classes, concrete | _ABSTRACT)

        registry = self._codec_registry(serialization.tree)
        constructed = self._constructed_names(serialization.tree)

        # ATH401 both directions.
        for name in sorted(concrete - set(registry)):
            yield self.finding(
                serialization,
                message_classes[name],
                "ATH401",
                f"message class {name} (messages.py:{message_classes[name].lineno}) "
                f"is not registered in CODEC_REGISTRY",
            )
        for name, (node, _wire_type) in sorted(registry.items()):
            if name not in message_classes:
                yield self.finding(
                    serialization,
                    node,
                    "ATH401",
                    f"CODEC_REGISTRY entry {name} has no class in messages.py",
                )
            elif name in _ABSTRACT:
                yield self.finding(
                    serialization,
                    node,
                    "ATH401",
                    f"CODEC_REGISTRY entry {name} is an abstract message base",
                )

        # ATH402: unpack support == the class is constructed somewhere in
        # serialization.py outside the registry literal itself.
        for name, (node, _wire_type) in sorted(registry.items()):
            if name in message_classes and name not in constructed:
                yield self.finding(
                    serialization,
                    node,
                    "ATH402",
                    f"{name} is registered but never constructed by an "
                    f"unpack path in serialization.py",
                )

        # ATH404: registry wire type vs the class's declared msg_type.
        for name, (node, wire_type) in sorted(registry.items()):
            declared = declared_types.get(name)
            if wire_type and declared and wire_type != declared:
                yield self.finding(
                    serialization,
                    node,
                    "ATH404",
                    f"CODEC_REGISTRY maps {name} to {wire_type} but the "
                    f"class declares msg_type = {declared}",
                )

        # ATH403: enum references must exist in constants.py.
        enums = _enum_members(constants.tree)
        for parsed in (messages, serialization):
            for enum_name, member, lineno in _enum_references(
                parsed.tree, set(enums)
            ):
                if member not in enums[enum_name]:
                    anchor = ast.Constant(value=None)
                    anchor.lineno = lineno
                    anchor.col_offset = 0
                    yield self.finding(
                        parsed,
                        anchor,
                        "ATH403",
                        f"{enum_name}.{member} is not defined in constants.py",
                    )

    @staticmethod
    def _codec_registry(tree: ast.AST) -> Dict[str, Tuple[ast.AST, Optional[str]]]:
        """CODEC_REGISTRY keys -> (AST node, ``MessageType.X`` value)."""
        registry: Dict[str, Tuple[ast.AST, Optional[str]]] = {}
        for node in ast.walk(tree):
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            if not any(
                isinstance(t, ast.Name) and t.id == "CODEC_REGISTRY" for t in targets
            ):
                continue
            value = node.value
            if not isinstance(value, ast.Dict):
                continue
            for key, entry in zip(value.keys, value.values):
                if isinstance(key, ast.Name):
                    registry[key.id] = (key, dotted_name(entry))
        return registry

    @staticmethod
    def _constructed_names(tree: ast.AST) -> Set[str]:
        """Class names called (constructed) anywhere in the module."""
        return {
            node.func.id
            for node in ast.walk(tree)
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
        }

