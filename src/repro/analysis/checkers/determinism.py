"""ATH1xx — the determinism sanitizer.

Athena runs must replay bit-identically from one root seed: simulated
timestamps come from :class:`repro.simkernel.clock.SimClock` and every
stochastic draw from :class:`repro.simkernel.rng.SeededRng` (or an
explicitly seeded ``np.random.default_rng``).  Wall-clock timestamps and
ambient RNG state silently break that, so this checker flags them
anywhere except inside ``simkernel`` itself — the one place allowed to
own the primitives.

Duration *profiling* (``time.perf_counter``, ``time.process_time``) is
deliberately permitted: measuring how long real computation took does
not perturb simulated results.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.analysis.astutil import dotted_name, import_map
from repro.analysis.engine import Checker, ParsedModule
from repro.analysis.findings import Finding

#: time-module functions that read the wall clock as a timestamp.
_WALL_CLOCK = {"time.time", "time.time_ns"}

#: datetime constructors that read the wall clock.
_DATETIME_NOW = {
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: numpy.random entry points that are fine when explicitly seeded.
_SEEDED_CONSTRUCTORS = {"default_rng", "Generator", "SeedSequence", "PCG64", "Philox"}


class DeterminismChecker(Checker):
    """Flags ambient time and randomness outside ``simkernel``."""

    name = "determinism"
    rules = {
        "ATH101": "wall-clock timestamp (time.time / time.time_ns); "
        "use simkernel.clock.SimClock",
        "ATH102": "wall-clock datetime (datetime.now / utcnow / today); "
        "use simkernel.clock.SimClock",
        "ATH103": "stdlib random call; use simkernel.rng.SeededRng",
        "ATH104": "un-derived numpy RNG (legacy np.random.* or unseeded "
        "default_rng()); derive from SeededRng or pass a seed",
    }

    def check(self, module: ParsedModule) -> Iterable[Finding]:
        if "simkernel/" in module.relpath or module.relpath.startswith("simkernel"):
            return []
        imports = import_map(module.tree)
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            resolved = imports.resolve(dotted)
            findings.extend(self._check_call(module, node, resolved))
        return findings

    def _check_call(
        self, module: ParsedModule, node: ast.Call, resolved: str
    ) -> Iterable[Finding]:
        if resolved in _WALL_CLOCK:
            yield self.finding(
                module,
                node,
                "ATH101",
                f"{resolved}() reads the wall clock; timestamps must come "
                f"from simkernel.clock (SimClock.now)",
            )
            return
        if resolved in _DATETIME_NOW:
            yield self.finding(
                module,
                node,
                "ATH102",
                f"{resolved}() reads the wall clock; timestamps must come "
                f"from simkernel.clock (SimClock.now)",
            )
            return
        if resolved.startswith("random.") and resolved.count(".") == 1:
            yield self.finding(
                module,
                node,
                "ATH103",
                f"{resolved}() draws from the process-global RNG; route "
                f"randomness through simkernel.rng.SeededRng",
            )
            return
        yield from self._check_numpy(module, node, resolved)

    def _check_numpy(
        self, module: ParsedModule, node: ast.Call, resolved: str
    ) -> Iterable[Finding]:
        if not resolved.startswith("numpy.random."):
            return
        func = resolved[len("numpy.random.") :]
        if "." in func:  # e.g. numpy.random.Generator.standard_normal — rare
            return
        if func in _SEEDED_CONSTRUCTORS:
            if node.args or node.keywords:
                return  # explicitly seeded / explicitly constructed
            yield self.finding(
                module,
                node,
                "ATH104",
                f"{func}() without a seed is entropy-seeded; pass a seed "
                f"derived from SeededRng so runs stay reproducible",
            )
            return
        yield self.finding(
            module,
            node,
            "ATH104",
            f"np.random.{func}() uses numpy's global RNG state; use a "
            f"generator derived from simkernel.rng.SeededRng",
        )
