"""ATH5xx — the telemetry clock discipline.

``repro.telemetry.clocks`` is the one sanctioned home for duration
clocks: :func:`wall_now` / :func:`cpu_now` / :class:`Stopwatch` wrap
``time.perf_counter`` and ``time.process_time`` so every measurement in
the framework flows through instruments that can be snapshot, disabled,
and audited in one place.  ATH1xx deliberately permits those duration
clocks (profiling does not perturb simulated results); this checker
closes the remaining gap by restricting the raw calls to the modules
that implement the measurement substrate itself — ``repro.telemetry``,
``repro.simkernel``, and ``repro.compute.backends`` (whose pool
processes measure task time without a registry).
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.analysis.astutil import dotted_name, import_map
from repro.analysis.engine import Checker, ParsedModule
from repro.analysis.findings import Finding

#: time-module duration clocks reserved for repro.telemetry.clocks.
_DURATION_CLOCKS = {
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "time.monotonic",
    "time.monotonic_ns",
}

#: Module path prefixes allowed to touch the raw clocks (relative to the
#: package root, matching how athena-lint reports relpaths).
_EXEMPT_PREFIXES = ("telemetry", "simkernel", "compute/backends")


class TelemetryChecker(Checker):
    """Flags raw duration clocks outside the telemetry substrate."""

    name = "telemetry"
    rules = {
        "ATH501": "raw duration clock (time.perf_counter / process_time / "
        "monotonic); use repro.telemetry.clocks (Stopwatch, wall_now, "
        "cpu_now)",
        "ATH502": "time.sleep() stalls the real process; simulated delays "
        "belong on the simkernel event loop",
    }

    @staticmethod
    def _exempt(module: ParsedModule) -> bool:
        relpath = module.relpath
        for prefix in _EXEMPT_PREFIXES:
            if relpath.startswith(prefix) or f"/{prefix}/" in relpath or (
                f"{prefix}/" in relpath
            ):
                return True
        return False

    def check(self, module: ParsedModule) -> Iterable[Finding]:
        if self._exempt(module):
            return []
        imports = import_map(module.tree)
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            resolved = imports.resolve(dotted)
            if resolved in _DURATION_CLOCKS:
                findings.append(
                    self.finding(
                        module,
                        node,
                        "ATH501",
                        f"{resolved}() reads a raw duration clock; route "
                        f"measurements through repro.telemetry.clocks "
                        f"(Stopwatch / wall_now / cpu_now)",
                    )
                )
            elif resolved == "time.sleep":
                findings.append(
                    self.finding(
                        module,
                        node,
                        "ATH502",
                        "time.sleep() blocks the real process; schedule "
                        "simulated delays on the simkernel event loop",
                    )
                )
        return findings
