"""Lint configuration (the ``[tool.athena-lint]`` pyproject section).

Two knobs, both path-scoped so one repository can hold framework code
(linted strictly), benchmarks (where wall-clock timing is legitimate),
and fixtures (not linted at all):

* ``exclude`` — path prefixes skipped entirely;
* ``disable`` — mapping of path prefix to rule-id prefixes silenced
  under that prefix (``"ATH1"`` silences the whole determinism family).

Example::

    [tool.athena-lint]
    exclude = ["build"]

    [tool.athena-lint.disable]
    "benchmarks" = ["ATH1"]
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


def _normalise(path: str) -> str:
    return path.replace(os.sep, "/").strip("/")


@dataclass
class LintConfig:
    """Resolved athena-lint settings."""

    #: Path prefixes (relative, "/"-separated) skipped entirely.
    exclude: List[str] = field(default_factory=list)
    #: Path prefix -> rule-id prefixes disabled beneath it.
    disable: Dict[str, List[str]] = field(default_factory=dict)

    def is_excluded(self, relpath: str) -> bool:
        relpath = _normalise(relpath)
        return any(
            relpath == prefix or relpath.startswith(prefix + "/")
            for prefix in (_normalise(p) for p in self.exclude)
        )

    def disabled_rules(self, relpath: str) -> Tuple[str, ...]:
        relpath = _normalise(relpath)
        disabled: List[str] = []
        for prefix, rules in self.disable.items():
            prefix = _normalise(prefix)
            if relpath == prefix or relpath.startswith(prefix + "/"):
                disabled.extend(rules)
        return tuple(disabled)

    def is_rule_disabled(self, relpath: str, rule: str) -> bool:
        return any(rule.startswith(prefix) for prefix in self.disabled_rules(relpath))


def load_config(pyproject_path: Optional[str]) -> LintConfig:
    """Read ``[tool.athena-lint]`` from a pyproject file.

    Missing file or missing section both yield the default (empty)
    config, so the linter runs out of the box on any tree.
    """
    if not pyproject_path or not os.path.isfile(pyproject_path):
        return LintConfig()
    import tomllib

    with open(pyproject_path, "rb") as handle:
        data = tomllib.load(handle)
    section = data.get("tool", {}).get("athena-lint", {})
    exclude = [str(p) for p in section.get("exclude", [])]
    disable = {
        str(path): [str(rule) for rule in rules]
        for path, rules in section.get("disable", {}).items()
    }
    return LintConfig(exclude=exclude, disable=disable)


def find_pyproject(start: str = ".") -> Optional[str]:
    """Walk up from ``start`` to the nearest pyproject.toml."""
    current = os.path.abspath(start)
    while True:
        candidate = os.path.join(current, "pyproject.toml")
        if os.path.isfile(candidate):
            return candidate
        parent = os.path.dirname(current)
        if parent == current:
            return None
        current = parent
