"""Lint findings and their stable wire form.

A :class:`Finding` is one rule violation at one source location.  The
JSON shape produced by :meth:`Finding.to_dict` is a stable contract —
``repro.analysis`` reporters, the CI workflow, and the self-check tests
all consume it — so the key set only ever grows behind a schema-version
bump.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any, Dict


#: Bumped whenever the JSON key set of a finding changes.
SCHEMA_VERSION = 1


class Severity(Enum):
    """How a finding affects the lint exit code."""

    ERROR = "error"  # fails the run (exit 1)
    WARNING = "warning"  # reported, never fails the run

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    checker: str
    severity: Severity = Severity.ERROR

    def location(self) -> str:
        """``file:line`` form used by the text reporter."""
        return f"{self.path}:{self.line}"

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule)

    def to_dict(self) -> Dict[str, Any]:
        """The schema-stable JSON form (keys are the v1 contract)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
            "checker": self.checker,
        }
