"""Lint report rendering.

Two reporters over the same :class:`~repro.analysis.engine.LintReport`:
a human ``file:line [RULE] message`` text form, and a schema-stable JSON
document (``schema_version`` 1) for CI and tooling.  Both write to an
injectable stream, mirroring :class:`repro.core.ui_manager.UIManager`.
"""

from __future__ import annotations

import json
import sys
from typing import Any, Dict, Optional, TextIO

from repro.analysis.engine import LintReport
from repro.analysis.findings import SCHEMA_VERSION


class TextReporter:
    """``file:line:col [RULE] message`` lines plus a one-line summary."""

    def __init__(self, stream: Optional[TextIO] = None) -> None:
        self.stream = stream

    def _out(self) -> TextIO:
        return self.stream if self.stream is not None else sys.stdout

    def report(self, report: LintReport) -> None:
        out = self._out()
        for error in report.parse_errors:
            print(f"parse error: {error}", file=out)
        for finding in report.findings:
            print(
                f"{finding.location()}:{finding.col} "
                f"[{finding.rule}] {finding.severity.value}: {finding.message}",
                file=out,
            )
        summary = (
            f"athena-lint: {report.files_checked} file(s) checked, "
            f"{report.error_count} error(s), {report.warning_count} warning(s)"
        )
        if report.files_skipped:
            summary += f", {report.files_skipped} excluded"
        print(summary, file=out)


class JsonReporter:
    """The machine-readable form (one JSON document, sorted keys)."""

    def __init__(self, stream: Optional[TextIO] = None) -> None:
        self.stream = stream

    def to_dict(self, report: LintReport) -> Dict[str, Any]:
        return {
            "schema_version": SCHEMA_VERSION,
            "summary": {
                "files_checked": report.files_checked,
                "files_skipped": report.files_skipped,
                "errors": report.error_count,
                "warnings": report.warning_count,
                "by_rule": report.by_rule(),
            },
            "parse_errors": list(report.parse_errors),
            "findings": [finding.to_dict() for finding in report.findings],
        }

    def report(self, report: LintReport) -> None:
        out = self.stream if self.stream is not None else sys.stdout
        json.dump(self.to_dict(report), out, indent=2, sort_keys=True)
        out.write("\n")
