"""Million-flow workloads for the sketch feature path (docs/SKETCH.md).

Seeded generator for flow-observation streams at a scale the exact
per-flow state cannot hold under the bench's memory ceiling: the default
spec produces ~1M distinct flows drawn over a 100k-host pool, split into
per-switch sampling windows.  Events are produced as numpy chunks so the
generator itself never materialises the full stream, and each chunk is
fed observation-by-observation into either a
:class:`~repro.sketch.features.SketchFeatureState` (bounded memory) or an
:class:`~repro.sketch.features.ExactWindowState` (linear memory — the
baseline the benchmark extrapolates).

Two attack scenarios, each confined to configured windows and switches:

* ``ddos`` — a spoofed-source flood toward one victim service: a surge
  of never-seen sources (crashes ``SKETCH_SEEN_HOST_RATIO``, inflates
  ``SKETCH_UNIQUE_SRC_EST``);
* ``portscan`` — one scanner sweeping destination ports: inflates
  ``SKETCH_UNIQUE_DST_PORT_EST`` far beyond the benign service-port mix.

Ground truth is per (switch, window): :meth:`SketchScaleGenerator.label`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.errors import ReproError
from repro.simkernel.rng import SeededRng

#: Benign service ports (a small fixed mix, so the benign distinct
#: dst-port estimate stays near len(_SERVICE_PORTS)).
_SERVICE_PORTS = np.array([80, 443, 53, 22, 25, 123, 993, 8080], dtype=np.int64)

#: Source-id offset for spoofed DDoS sources, far outside any host pool.
_SPOOF_BASE = 1 << 40


@dataclass(frozen=True)
class SketchScaleSpec:
    """Shape of one sketch-scale workload run."""

    scenario: str = "ddos"  # "ddos" | "portscan"
    n_flows: int = 1_000_000  # distinct flows across the whole run
    n_hosts: int = 100_000  # benign source-host pool
    n_switches: int = 8
    n_windows: int = 8
    #: Windows carrying attack traffic; None picks two late windows
    #: scaled to ``n_windows``.
    attack_windows: Optional[Tuple[int, ...]] = None
    attack_switches: Tuple[int, ...] = (1, 2)  # dpids (1-based)
    #: Attack observations per benign observation on an attacked
    #: (switch, window) cell.
    attack_intensity: float = 2.0
    chunk_size: int = 100_000
    seed: int = 7

    def __post_init__(self) -> None:
        if self.scenario not in ("ddos", "portscan"):
            raise ReproError(f"unknown sketch scenario {self.scenario!r}")
        if self.n_windows < 2 or self.n_switches < 1:
            raise ReproError("sketch workload needs >= 2 windows and >= 1 switch")
        if self.attack_windows is None:
            late = self.n_windows - 1
            mid = self.n_windows // 2
            object.__setattr__(
                self, "attack_windows", (mid,) if mid == late else (mid, late)
            )
        for window in self.attack_windows:
            if not 0 <= window < self.n_windows:
                raise ReproError(f"attack window {window} out of range")

    @property
    def benign_per_window(self) -> int:
        """Benign observations per window (spread over all switches)."""
        return max(self.n_switches, self.n_flows // self.n_windows)


@dataclass
class EventChunk:
    """A block of flow observations as parallel numpy columns."""

    window: int
    dpid: np.ndarray  # int64, 1-based switch ids
    flow_id: np.ndarray  # int64, distinct-flow identity
    src: np.ndarray  # int64, source-host identity
    dst_port: np.ndarray  # int64
    packets: np.ndarray  # int64
    bytes_: np.ndarray  # int64

    def __len__(self) -> int:
        return len(self.dpid)


class SketchScaleGenerator:
    """Chunked, seeded event stream plus per-(switch, window) labels."""

    def __init__(self, spec: SketchScaleSpec) -> None:
        self.spec = spec
        self._rng = SeededRng(spec.seed, f"sketchscale/{spec.scenario}")
        # Scanner host is fixed per run: the lowest benign host id.
        self.scanner_host = 0

    def label(self, dpid: int, window: int) -> int:
        """Ground truth: 1 when the cell carries attack traffic."""
        spec = self.spec
        return int(window in spec.attack_windows and dpid in spec.attack_switches)

    # -- event synthesis ----------------------------------------------------

    def _benign_chunk(
        self, rng: SeededRng, window: int, size: int, flow_base: int
    ) -> EventChunk:
        spec = self.spec
        dpid = rng.integers(1, spec.n_switches + 1, size=size).astype(np.int64)
        src = rng.integers(0, spec.n_hosts, size=size).astype(np.int64)
        dst_port = _SERVICE_PORTS[rng.integers(0, len(_SERVICE_PORTS), size=size)]
        packets = rng.integers(1, 20, size=size).astype(np.int64)
        bytes_ = packets * rng.integers(64, 1400, size=size).astype(np.int64)
        flow_id = np.arange(flow_base, flow_base + size, dtype=np.int64)
        return EventChunk(window, dpid, flow_id, src, dst_port, packets, bytes_)

    def _attack_chunk(
        self, rng: SeededRng, window: int, size: int, flow_base: int
    ) -> EventChunk:
        spec = self.spec
        switches = np.array(spec.attack_switches, dtype=np.int64)
        dpid = switches[rng.integers(0, len(switches), size=size)]
        flow_id = np.arange(flow_base, flow_base + size, dtype=np.int64)
        if spec.scenario == "ddos":
            # Spoofed, never-before-seen sources flooding the victim port.
            src = _SPOOF_BASE + flow_id
            dst_port = np.full(size, 80, dtype=np.int64)
            packets = rng.integers(1, 4, size=size).astype(np.int64)
            bytes_ = packets * 64
        else:
            # One scanner probing distinct destination ports.
            src = np.full(size, self.scanner_host, dtype=np.int64)
            dst_port = 1024 + (flow_id % 60000)
            packets = np.ones(size, dtype=np.int64)
            bytes_ = np.full(size, 64, dtype=np.int64)
        return EventChunk(window, dpid, flow_id, src, dst_port, packets, bytes_)

    def chunks(self) -> Iterator[EventChunk]:
        """The event stream, window by window, in chunks of ``chunk_size``."""
        spec = self.spec
        flow_base = 0
        for window in range(spec.n_windows):
            rng = self._rng.child(f"window/{window}")
            benign = spec.benign_per_window
            remaining = benign
            while remaining > 0:
                size = min(spec.chunk_size, remaining)
                yield self._benign_chunk(rng, window, size, flow_base)
                flow_base += size
                remaining -= size
            if window in spec.attack_windows:
                attack_per_cell = int(
                    spec.attack_intensity * benign / spec.n_switches
                )
                remaining = max(1, attack_per_cell) * len(spec.attack_switches)
                while remaining > 0:
                    size = min(spec.chunk_size, remaining)
                    yield self._attack_chunk(rng, window, size, flow_base)
                    flow_base += size
                    remaining -= size

    # -- feeding states -----------------------------------------------------

    @staticmethod
    def feed_chunk(state, chunk: EventChunk) -> None:
        """Fold one chunk into a sketch/exact window state."""
        observe = state.observe
        dpid, flow_id, src = chunk.dpid, chunk.flow_id, chunk.src
        dst_port, packets, bytes_ = chunk.dst_port, chunk.packets, chunk.bytes_
        for i in range(len(dpid)):
            observe(
                int(dpid[i]),
                int(flow_id[i]),
                int(src[i]),
                int(dst_port[i]),
                packets=int(packets[i]),
                bytes_=int(bytes_[i]),
            )

    def run(self, state) -> List[Dict[str, float]]:
        """Feed the full stream into ``state``, rolling windows into documents.

        Returns one flattened feature document per (switch, window) with
        ground-truth labels, ready for ``FeatureManager.publish_documents``
        or the ``documents=`` short-circuit of the detector manager.
        """
        documents: List[Dict[str, float]] = []
        current_window = 0
        for chunk in self.chunks():
            if chunk.window != current_window:
                documents.extend(self._roll_window(state, current_window))
                current_window = chunk.window
            self.feed_chunk(state, chunk)
        documents.extend(self._roll_window(state, current_window))
        return documents

    def _roll_window(self, state, window: int) -> List[Dict[str, float]]:
        documents = []
        for dpid in range(1, self.spec.n_switches + 1):
            fields = state.roll(dpid)
            if not fields["SKETCH_OBSERVATIONS"]:
                continue
            document: Dict[str, float] = {
                "feature_scope": "sketch",
                "switch_id": dpid,
                "instance_id": 0,
                "timestamp": float(window),
                "label": self.label(dpid, window),
            }
            document.update(fields)
            documents.append(document)
        return documents
