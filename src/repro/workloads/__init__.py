"""Workload and dataset generators.

Replaces the paper's physical testbed traffic: seeded generators produce
either live packet schedules for the data-plane simulator (NAE and LFA
scenarios, integration tests) or labelled Athena feature datasets with the
paper's benign/malicious mix (the 37.37M-entry DDoS dataset, scaled by a
configurable factor).
"""

from repro.workloads.ddos import DDoSDatasetGenerator, DDoSDatasetSpec
from repro.workloads.flows import FlowSpec, TrafficSchedule
from repro.workloads.lfa import LFATrafficGenerator
from repro.workloads.nae import NAEWorkload
from repro.workloads.sketchscale import (
    EventChunk,
    SketchScaleGenerator,
    SketchScaleSpec,
)

__all__ = [
    "DDoSDatasetGenerator",
    "DDoSDatasetSpec",
    "EventChunk",
    "FlowSpec",
    "TrafficSchedule",
    "LFATrafficGenerator",
    "NAEWorkload",
    "SketchScaleGenerator",
    "SketchScaleSpec",
]
