"""The NAE scenario workload (Scenario 3 / Figures 8-9).

Clients behind the edge switches download from the FTP server and browse
the web server.  The workload is FTP-dominated (the paper: "the network is
dominated by FTP flows"), so once the security application activates and
pins FTP through the security-device path, the load balancer loses control
of most traffic and the link-load asymmetry appears.

Flows restart periodically (think successive file downloads), which lets
the load balancer's soft-timeout rules expire and re-balance — the source
of Figure 9's sawtooth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.simkernel.rng import SeededRng
from repro.workloads.flows import FlowSpec


@dataclass
class NAEWorkload:
    """FTP-heavy client workload against the Figure 8 servers."""

    clients: Sequence[str]
    ftp_server: str = "ftp"
    web_server: str = "web"
    seed: int = 33
    duration: float = 60.0
    #: Fraction of client sessions that are FTP downloads.
    ftp_fraction: float = 0.8
    #: Session length; flows restart after this, enabling re-balancing.
    session_seconds: float = 6.0
    ftp_rate_pps: float = 60.0
    web_rate_pps: float = 15.0

    def flows(self) -> List[FlowSpec]:
        rng = SeededRng(self.seed, "nae")
        specs: List[FlowSpec] = []
        n_sessions = int(self.duration // self.session_seconds)
        for client_idx, client in enumerate(self.clients):
            for session in range(n_sessions):
                start = session * self.session_seconds + float(
                    rng.uniform(0.0, 0.5)
                )
                is_ftp = float(rng.uniform()) < self.ftp_fraction
                if is_ftp:
                    specs.append(
                        FlowSpec(
                            src_host=client,
                            dst_host=self.ftp_server,
                            sport=50000 + client_idx * 64 + session,
                            dport=21,
                            packet_size=1400,
                            rate_pps=self.ftp_rate_pps,
                            start=start,
                            duration=self.session_seconds * 0.8,
                            bidirectional=True,
                            reverse_packet_size=1400,
                            reverse_rate_pps=self.ftp_rate_pps,
                        )
                    )
                else:
                    specs.append(
                        FlowSpec(
                            src_host=client,
                            dst_host=self.web_server,
                            sport=52000 + client_idx * 64 + session,
                            dport=80,
                            packet_size=900,
                            rate_pps=self.web_rate_pps,
                            start=start,
                            duration=self.session_seconds * 0.6,
                            bidirectional=True,
                        )
                    )
        return specs
