"""Link Flooding Attack (Crossfire-style) traffic (Scenario 2).

An LFA adversary saturates a *target link* using many individually
low-rate, protocol-conforming flows between bot hosts and public decoy
servers whose paths all traverse that link.  The generator builds the
benign background plus the coordinated bot flows as
:class:`~repro.workloads.flows.FlowSpec` lists for live injection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.simkernel.rng import SeededRng
from repro.workloads.flows import FlowSpec


@dataclass
class LFATrafficGenerator:
    """Builds bot and benign flow schedules for the LFA scenario."""

    bot_hosts: Sequence[str]
    decoy_hosts: Sequence[str]
    benign_pairs: Sequence[tuple] = ()
    seed: int = 21
    #: Per-bot-flow rate: low enough to look legitimate individually.
    bot_rate_pps: float = 40.0
    bot_packet_size: int = 700
    flows_per_bot: int = 3
    attack_start: float = 5.0
    attack_duration: float = 10.0

    def benign_flows(self, duration: float = 20.0) -> List[FlowSpec]:
        """Normal bidirectional background traffic."""
        rng = SeededRng(self.seed, "lfa-benign")
        specs = []
        for idx, (src, dst) in enumerate(self.benign_pairs):
            specs.append(
                FlowSpec(
                    src_host=src,
                    dst_host=dst,
                    sport=30000 + idx,
                    dport=80,
                    packet_size=int(rng.integers(400, 1400)),
                    rate_pps=float(rng.uniform(5, 15)),
                    start=float(rng.uniform(0.0, 2.0)),
                    duration=duration,
                    bidirectional=True,
                    # Legitimate senders grow into available bandwidth,
                    # which is what the TBE step exposes.
                    rate_growth=0.35,
                )
            )
        return specs

    def attack_flows(self) -> List[FlowSpec]:
        """The coordinated bot flows converging on the target link."""
        rng = SeededRng(self.seed, "lfa-attack")
        specs = []
        for bot_idx, bot in enumerate(self.bot_hosts):
            for flow_idx in range(self.flows_per_bot):
                decoy = self.decoy_hosts[
                    (bot_idx * self.flows_per_bot + flow_idx) % len(self.decoy_hosts)
                ]
                specs.append(
                    FlowSpec(
                        src_host=bot,
                        dst_host=decoy,
                        sport=45000 + bot_idx * 16 + flow_idx,
                        dport=80,
                        packet_size=self.bot_packet_size,
                        rate_pps=self.bot_rate_pps * float(rng.uniform(0.8, 1.2)),
                        start=self.attack_start + float(rng.uniform(0.0, 0.5)),
                        duration=self.attack_duration,
                        bidirectional=False,
                    )
                )
        return specs

    def all_flows(self, benign_duration: float = 20.0) -> List[FlowSpec]:
        return self.benign_flows(benign_duration) + self.attack_flows()
