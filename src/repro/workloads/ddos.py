"""The DDoS dataset generator (Scenario 1 / Figure 6).

Generates labelled Athena flow-feature documents with the paper's mix:
25% benign / 75% malicious entries, benign flows sampled ~367 times and
malicious flows ~168 times (the 37,370,466-entry dataset scales down by a
single ``scale`` factor while preserving the proportions).

The class-conditional structure mirrors the attack traffic of Braga et
al. [10], which the paper replays:

* benign modes — paired web, DNS and bulk-transfer flows; plus a *flash
  crowd* mode (≈4.5% of benign entries) whose one-way bursty profile is
  indistinguishable from a UDP flood, producing the paper's false alarms;
* malicious modes — SYN / UDP / ICMP floods (unpaired, high packet rate,
  small payloads, depressed switch-level pair-flow ratio); plus a *stealth*
  mode (≈0.77% of malicious entries) that mimics paired web traffic,
  producing the paper's false negatives.

Feature tuple (10 features, matching the paper's "10-tuples" over the
Table V candidates): PAIR_FLOW, PAIR_FLOW_RATIO, FLOW_PACKET_COUNT,
FLOW_BYTE_COUNT, FLOW_BYTE_PER_PACKET, FLOW_PACKET_PER_DURATION,
FLOW_BYTE_PER_DURATION, FLOW_DURATION_SEC, FLOW_DURATION_N_SEC,
DST_FLOW_FANIN.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

import numpy as np

from repro.simkernel.rng import SeededRng
from repro.types import ip_from_int

#: The 10-feature tuple the detector trains on.
DDOS_FEATURES = [
    "PAIR_FLOW",
    "PAIR_FLOW_RATIO",
    "FLOW_PACKET_COUNT",
    "FLOW_BYTE_COUNT",
    "FLOW_BYTE_PER_PACKET",
    "FLOW_PACKET_PER_DURATION",
    "FLOW_BYTE_PER_DURATION",
    "FLOW_DURATION_SEC",
    "FLOW_DURATION_N_SEC",
    "DST_FLOW_FANIN",
]

#: Paper dataset proportions (Figure 6).
PAPER_TOTAL_ENTRIES = 37_370_466
PAPER_BENIGN_ENTRIES = 9_375_848
PAPER_MALICIOUS_ENTRIES = 27_994_618
PAPER_BENIGN_FLOWS = 25_559
PAPER_MALICIOUS_FLOWS = 166_213


@dataclass
class DDoSDatasetSpec:
    """Scaled dataset shape."""

    scale: float = 0.001
    seed: int = 7
    #: Fraction of benign entries from the flash-crowd (attack-like) mode.
    flash_fraction: float = 0.0446
    #: Fraction of malicious entries from the stealth (benign-like) mode.
    stealth_fraction: float = 0.0077
    n_switches: int = 18

    @property
    def benign_flows(self) -> int:
        return max(8, int(round(PAPER_BENIGN_FLOWS * self.scale)))

    @property
    def malicious_flows(self) -> int:
        return max(8, int(round(PAPER_MALICIOUS_FLOWS * self.scale)))

    @property
    def benign_entries(self) -> int:
        return max(self.benign_flows, int(round(PAPER_BENIGN_ENTRIES * self.scale)))

    @property
    def malicious_entries(self) -> int:
        return max(
            self.malicious_flows, int(round(PAPER_MALICIOUS_ENTRIES * self.scale))
        )


def _clip(values: np.ndarray, low: float, high: float) -> np.ndarray:
    return np.clip(values, low, high)


class DDoSDatasetGenerator:
    """Produces labelled Athena flow-feature documents."""

    def __init__(self, spec: DDoSDatasetSpec = None) -> None:
        self.spec = spec or DDoSDatasetSpec()
        self._rng = SeededRng(self.spec.seed, "ddos")

    # -- per-mode samplers: (packets, bpp, duration, paired, ratio, fanin) --

    def _mode_web(self, rng, n: int) -> Dict[str, np.ndarray]:
        packets = _clip(rng.generator.lognormal(3.4, 0.7, n), 4, 2000)
        bpp = _clip(rng.normal(900, 180, n), 200, 1500)
        duration = _clip(rng.generator.lognormal(2.2, 0.8, n), 0.5, 300)
        return {
            "packets": packets,
            "bpp": bpp,
            "duration": duration,
            "paired": np.ones(n),
            "ratio": _clip(rng.normal(0.86, 0.05, n), 0.6, 1.0),
            "fanin": _clip(rng.normal(4, 2, n), 1, 20),
        }

    def _mode_dns(self, rng, n: int) -> Dict[str, np.ndarray]:
        return {
            "packets": _clip(rng.normal(3, 1, n), 1, 8),
            "bpp": _clip(rng.normal(120, 25, n), 60, 300),
            "duration": _clip(rng.exponential(0.4, n), 0.05, 3),
            "paired": np.ones(n),
            "ratio": _clip(rng.normal(0.88, 0.04, n), 0.6, 1.0),
            "fanin": _clip(rng.normal(6, 3, n), 1, 30),
        }

    def _mode_bulk(self, rng, n: int) -> Dict[str, np.ndarray]:
        return {
            "packets": _clip(rng.generator.lognormal(7.5, 0.6, n), 500, 50000),
            "bpp": _clip(rng.normal(1380, 60, n), 1000, 1500),
            "duration": _clip(rng.generator.lognormal(4.0, 0.6, n), 10, 1000),
            "paired": np.ones(n),
            "ratio": _clip(rng.normal(0.84, 0.06, n), 0.6, 1.0),
            "fanin": _clip(rng.normal(3, 1.5, n), 1, 10),
        }

    def _mode_udp_flood(self, rng, n: int) -> Dict[str, np.ndarray]:
        return {
            "packets": _clip(rng.generator.lognormal(6.2, 0.5, n), 100, 20000),
            "bpp": _clip(rng.normal(310, 60, n), 100, 600),
            "duration": _clip(rng.exponential(2.0, n), 0.2, 20),
            "paired": np.zeros(n),
            "ratio": _clip(rng.normal(0.14, 0.06, n), 0.0, 0.4),
            "fanin": _clip(rng.generator.lognormal(5.5, 0.5, n), 50, 2000),
        }

    def _mode_syn_flood(self, rng, n: int) -> Dict[str, np.ndarray]:
        return {
            "packets": _clip(rng.generator.lognormal(5.8, 0.5, n), 80, 10000),
            "bpp": _clip(rng.normal(64, 6, n), 40, 90),
            "duration": _clip(rng.exponential(1.5, n), 0.1, 15),
            "paired": np.zeros(n),
            "ratio": _clip(rng.normal(0.12, 0.05, n), 0.0, 0.35),
            "fanin": _clip(rng.generator.lognormal(5.8, 0.5, n), 80, 3000),
        }

    def _mode_icmp_flood(self, rng, n: int) -> Dict[str, np.ndarray]:
        return {
            "packets": _clip(rng.generator.lognormal(6.0, 0.5, n), 100, 15000),
            "bpp": _clip(rng.normal(84, 8, n), 56, 120),
            "duration": _clip(rng.exponential(2.5, n), 0.2, 25),
            "paired": np.zeros(n),
            "ratio": _clip(rng.normal(0.16, 0.06, n), 0.0, 0.4),
            "fanin": _clip(rng.generator.lognormal(5.3, 0.5, n), 40, 1500),
        }

    #: Flash crowds replicate the UDP-flood profile (the FP source).
    def _mode_flash(self, rng, n: int) -> Dict[str, np.ndarray]:
        return self._mode_udp_flood(rng, n)

    #: Stealth attacks replicate the web profile (the FN source).
    def _mode_stealth(self, rng, n: int) -> Dict[str, np.ndarray]:
        return self._mode_web(rng, n)

    # -- assembly ------------------------------------------------------------

    def _build_entries(
        self,
        rng: SeededRng,
        modes: List[Tuple[str, float]],
        n_flows: int,
        n_entries: int,
        label: int,
        proto_by_mode: Dict[str, int],
        src_base: int,
        dst_pool: List[str],
    ) -> List[Dict[str, Any]]:
        """Allocate flows and entries to modes by exact proportion.

        Deterministic apportionment keeps the flash/stealth entry fractions
        (the FP/FN drivers) at their configured values even at small scales,
        where sampling modes per flow would introduce large variance.
        """
        names = [m for m, _ in modes]
        weights = np.array([w for _, w in modes])
        weights = weights / weights.sum()
        # Largest-remainder apportionment of flows and entries per mode.
        flow_counts = np.maximum(1, np.floor(weights * n_flows).astype(int))
        entry_counts = np.maximum(1, np.floor(weights * n_entries).astype(int))
        flow_counts[0] += n_flows - flow_counts.sum()
        entry_counts[0] += n_entries - entry_counts.sum()
        samplers = {
            "web": self._mode_web,
            "dns": self._mode_dns,
            "bulk": self._mode_bulk,
            "udp": self._mode_udp_flood,
            "syn": self._mode_syn_flood,
            "icmp": self._mode_icmp_flood,
            "flash": self._mode_flash,
            "stealth": self._mode_stealth,
        }
        flows = []
        flow_indices_by_mode = {}
        flow_idx = 0
        for mode_idx, mode in enumerate(names):
            indices = []
            for _ in range(int(flow_counts[mode_idx])):
                base = samplers[mode](rng, 1)
                flows.append(
                    {
                        "mode": mode,
                        "ip_src": ip_from_int(src_base + flow_idx),
                        "ip_dst": dst_pool[flow_idx % len(dst_pool)],
                        "ip_proto": proto_by_mode.get(mode, 6),
                        "tcp_src": int(rng.integers(1024, 65000)),
                        "tcp_dst": 80
                        if mode in ("web", "flash", "stealth", "syn")
                        else 53,
                        "base": {k: float(v[0]) for k, v in base.items()},
                    }
                )
                indices.append(flow_idx)
                flow_idx += 1
            flow_indices_by_mode[mode] = indices
        # Entries: exact per-mode counts, flows sampled within the mode.
        entry_flow = np.concatenate(
            [
                rng.choice(flow_indices_by_mode[mode], size=int(entry_counts[i]))
                for i, mode in enumerate(names)
            ]
        )
        rng.shuffle(entry_flow)
        documents: List[Dict[str, Any]] = []
        jitter = rng.normal(1.0, 0.08, size=n_entries)
        timestamps = np.sort(rng.uniform(0.0, 3600.0, size=n_entries))
        for i in range(n_entries):
            flow = flows[int(entry_flow[i])]
            base = flow["base"]
            growth = max(0.05, float(jitter[i]))
            packets = max(1.0, base["packets"] * growth)
            bpp = max(20.0, base["bpp"] * max(0.5, float(jitter[i])))
            duration = max(0.05, base["duration"] * growth)
            bytes_ = packets * bpp
            doc: Dict[str, Any] = {
                "feature_scope": "flow",
                "switch_id": int(i % self.spec.n_switches) + 1,
                "instance_id": int(i % 3),
                "timestamp": float(timestamps[i]),
                "ip_src": flow["ip_src"],
                "ip_dst": flow["ip_dst"],
                "ip_proto": flow["ip_proto"],
                "tcp_src": flow["tcp_src"],
                "tcp_dst": flow["tcp_dst"],
                "label": label,
                "PAIR_FLOW": base["paired"],
                "PAIR_FLOW_RATIO": base["ratio"],
                "FLOW_PACKET_COUNT": packets,
                "FLOW_BYTE_COUNT": bytes_,
                "FLOW_BYTE_PER_PACKET": bpp,
                "FLOW_PACKET_PER_DURATION": packets / duration,
                "FLOW_BYTE_PER_DURATION": bytes_ / duration,
                "FLOW_DURATION_SEC": duration,
                "FLOW_DURATION_N_SEC": float(rng.uniform(0, 1e9)),
                "DST_FLOW_FANIN": base["fanin"],
            }
            documents.append(doc)
        return documents

    def generate(self) -> List[Dict[str, Any]]:
        """Build the full labelled dataset (shuffled by timestamp order)."""
        spec = self.spec
        rng_benign = self._rng.child("benign")
        rng_attack = self._rng.child("attack")
        servers = [ip_from_int((10 << 24) + (1 << 16) + i) for i in range(8)]
        victim = [ip_from_int((10 << 24) + (2 << 16) + 1)]
        benign = self._build_entries(
            rng_benign,
            modes=[
                ("web", 0.62 * (1 - spec.flash_fraction)),
                ("dns", 0.20 * (1 - spec.flash_fraction)),
                ("bulk", 0.18 * (1 - spec.flash_fraction)),
                ("flash", spec.flash_fraction),
            ],
            n_flows=spec.benign_flows,
            n_entries=spec.benign_entries,
            label=0,
            proto_by_mode={"web": 6, "dns": 17, "bulk": 6, "flash": 17},
            src_base=(172 << 24) + (16 << 16),
            dst_pool=servers,
        )
        malicious = self._build_entries(
            rng_attack,
            modes=[
                ("syn", 0.40 * (1 - spec.stealth_fraction)),
                ("udp", 0.35 * (1 - spec.stealth_fraction)),
                ("icmp", 0.25 * (1 - spec.stealth_fraction)),
                ("stealth", spec.stealth_fraction),
            ],
            n_flows=spec.malicious_flows,
            n_entries=spec.malicious_entries,
            label=1,
            proto_by_mode={"syn": 6, "udp": 17, "icmp": 1, "stealth": 6},
            src_base=(198 << 24) + (51 << 16),
            dst_pool=victim,
        )
        documents = benign + malicious
        documents.sort(key=lambda d: d["timestamp"])
        return documents

    def train_test_split(
        self, documents: List[Dict[str, Any]], train_fraction: float = 0.5
    ) -> Tuple[List[Dict[str, Any]], List[Dict[str, Any]]]:
        """Deterministic interleaved split preserving class mix."""
        train, test = [], []
        for i, doc in enumerate(documents):
            (train if (i % 1000) < train_fraction * 1000 else test).append(doc)
        return train, test
