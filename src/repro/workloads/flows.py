"""Flow specifications and live traffic scheduling.

A :class:`FlowSpec` describes one unidirectional flow (endpoints, protocol,
rate, size, lifetime); a :class:`TrafficSchedule` turns a set of specs into
packet injections on the data-plane simulator, which is how the NAE and LFA
scenarios and the integration tests generate load.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.dataplane.host import Host
from repro.dataplane.network import Network
from repro.dataplane.packet import Packet, flow_headers
from repro.errors import ReproError
from repro.openflow.constants import IPPROTO_TCP


@dataclass
class FlowSpec:
    """One unidirectional flow to inject."""

    src_host: str
    dst_host: str
    proto: int = IPPROTO_TCP
    sport: int = 40000
    dport: int = 80
    packet_size: int = 1000
    rate_pps: float = 10.0
    start: float = 0.0
    duration: float = 5.0
    #: Generate the reverse (ack-style) flow as well.
    bidirectional: bool = False
    reverse_packet_size: int = 80
    reverse_rate_pps: Optional[float] = None
    #: TCP-like rate growth: the instantaneous rate multiplies by
    #: ``(1 + rate_growth)`` each second, modelling a sender expanding into
    #: available bandwidth (bots in the LFA scenario keep this at 0).
    rate_growth: float = 0.0


class TrafficSchedule:
    """Schedules FlowSpec packet injections onto a network's simulator."""

    def __init__(self, network: Network) -> None:
        self.network = network
        self.packets_scheduled = 0

    def _host(self, name: str) -> Host:
        host = self.network.hosts.get(name)
        if host is None:
            raise ReproError(f"unknown host {name!r}")
        return host

    def prime_arp(self, when: float = 0.0) -> int:
        """Broadcast one discovery packet per host so locations are learned."""
        count = 0
        hosts = list(self.network.hosts.values())
        for host in hosts:
            packet = Packet(
                headers=flow_headers(
                    host.mac,
                    "ff:ff:ff:ff:ff:ff",
                    host.ip,
                    "255.255.255.255",
                    proto=17,
                    sport=68,
                    dport=67,
                ),
                size=64,
            )
            self.network.inject_from_host(host.name, packet, when=when)
            count += 1
        self.packets_scheduled += count
        return count

    def add_flow(self, spec: FlowSpec) -> int:
        """Schedule every packet of one flow; returns packets scheduled."""
        src = self._host(spec.src_host)
        dst = self._host(spec.dst_host)
        headers = flow_headers(
            src.mac, dst.mac, src.ip, dst.ip,
            proto=spec.proto, sport=spec.sport, dport=spec.dport,
        )
        send_times = self._packet_times(spec)
        for when in send_times:
            self.network.inject_from_host(
                spec.src_host,
                Packet(headers=dict(headers), size=spec.packet_size),
                when=when,
            )
        scheduled = len(send_times)
        if spec.bidirectional:
            reverse_spec = FlowSpec(
                src_host=spec.dst_host,
                dst_host=spec.src_host,
                rate_pps=spec.reverse_rate_pps or spec.rate_pps,
                start=spec.start + 0.05,
                duration=spec.duration,
                rate_growth=spec.rate_growth,
            )
            reverse = flow_headers(
                dst.mac, src.mac, dst.ip, src.ip,
                proto=spec.proto, sport=spec.dport, dport=spec.sport,
            )
            reverse_times = self._packet_times(reverse_spec)
            for when in reverse_times:
                self.network.inject_from_host(
                    spec.dst_host,
                    Packet(headers=dict(reverse), size=spec.reverse_packet_size),
                    when=when,
                )
            scheduled += len(reverse_times)
        self.packets_scheduled += scheduled
        return scheduled

    @staticmethod
    def _packet_times(spec: FlowSpec) -> List[float]:
        """Send times for one flow, honouring ``rate_growth`` per second."""
        if spec.rate_growth <= 0:
            n_packets = max(1, int(round(spec.rate_pps * spec.duration)))
            interval = spec.duration / n_packets
            return [spec.start + i * interval for i in range(n_packets)]
        times: List[float] = []
        elapsed = 0.0
        while elapsed < spec.duration:
            second = int(elapsed)
            rate = spec.rate_pps * (1.0 + spec.rate_growth) ** second
            elapsed += 1.0 / rate
            if elapsed < spec.duration:
                times.append(spec.start + elapsed)
        return times or [spec.start]

    def add_flows(self, specs: List[FlowSpec]) -> int:
        return sum(self.add_flow(spec) for spec in specs)
