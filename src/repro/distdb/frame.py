"""Columnar feature frames: numpy columns over shared stored documents.

A :class:`FeatureFrame` is the batch-path representation of a query
result (docs/PERF.md): a dict of column-name → numpy array plus the row
index — the *shared* stored document dicts, in result order, never
copied.  Numeric columns (the FEATURE_CATALOG namespace plus numeric
index keys) are ``float64`` arrays with an explicit missing mask;
columns holding any non-numeric value fall back to ``object`` arrays so
comparison semantics stay exactly those of the document path.

The module also compiles the Mongo-style filter language of
:mod:`repro.distdb.query` to boolean masks (:func:`filter_mask`) and
reproduces :func:`~repro.distdb.query.sort_documents` ordering with
stable argsorts (:meth:`FeatureFrame.sort`).  The contract, enforced by
property tests and ``benchmarks/bench_scale.py``: for any documents and
any valid filter/sort/limit, the frame path selects exactly the rows
``matches_filter`` would, in exactly the order the document path
returns them.
"""

# athena-lint: hot-path columnar

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.distdb.query import _compare, get_path, matches_filter
from repro.errors import QueryError

class _Virtual:
    """Sentinel distinguishing 'never materialised' from a real column."""


_VIRTUAL = _Virtual()


def _is_plain_number(value: Any) -> bool:
    """Numeric for column-typing purposes: int/float but not bool.

    Bools are excluded so boolean-valued columns take the object path,
    where row-wise evaluation preserves the document path's semantics
    (``Preprocessor._matrix`` treats bools as non-numeric).
    """
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _build_column(docs: Sequence[Dict[str, Any]], name: str) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """One typed column over ``docs``: (values, missing-mask).

    Numeric columns return ``float64`` values (missing slots hold NaN —
    which makes ordered/equality masks correct with no extra masking)
    plus a bool missing mask distinguishing absent values from stored
    NaNs.  Mixed or non-numeric columns return an ``object`` array with
    ``missing is None`` (the values themselves carry ``None``).
    """
    raw = [doc.get(name) for doc in docs]
    numeric = True
    for value in raw:
        if value is None or type(value) is float or type(value) is int:
            continue
        if _is_plain_number(value):
            continue
        numeric = False
        break
    if numeric:
        values = np.array(raw, dtype=np.float64) if raw else np.empty(0, dtype=np.float64)
        missing = np.fromiter((v is None for v in raw), dtype=bool, count=len(raw))
        return values, missing
    return np.array(raw, dtype=object), None


class FeatureFrame:
    """A columnar view over shared stored documents."""

    __slots__ = ("_values", "_missing", "_docs")

    def __init__(
        self,
        values: Dict[str, np.ndarray],
        missing: Dict[str, Optional[np.ndarray]],
        docs: List[Dict[str, Any]],
    ) -> None:
        self._values = values
        self._missing = missing
        self._docs = docs

    # -- construction ------------------------------------------------------

    @classmethod
    def from_documents(
        cls,
        docs: Sequence[Dict[str, Any]],
        columns: Optional[Iterable[str]] = None,
    ) -> "FeatureFrame":
        """Materialise typed columns straight from stored documents.

        The documents are *referenced*, never copied: ``docs`` becomes the
        frame's row index, so callers must treat the rows as read-only.
        With ``columns=None`` the union of document keys (first-use order)
        is materialised.
        """
        docs = docs if isinstance(docs, list) else list(docs)
        if columns is None:
            seen: Dict[str, None] = {}
            for doc in docs:
                for key in doc:
                    if key not in seen:
                        seen[key] = None
            columns = list(seen)
        values: Dict[str, np.ndarray] = {}
        missing: Dict[str, Optional[np.ndarray]] = {}
        for name in columns:
            if name in values:
                continue
            values[name], missing[name] = _build_column(docs, name)
        return cls(values, missing, docs)

    @classmethod
    def from_columns(
        cls,
        values: Dict[str, np.ndarray],
        missing: Dict[str, Optional[np.ndarray]],
        docs: List[Dict[str, Any]],
    ) -> "FeatureFrame":
        """Assemble a frame from prebuilt arrays (parallel extraction)."""
        return cls(dict(values), dict(missing), docs)

    @classmethod
    def concat(cls, frames: Sequence["FeatureFrame"]) -> "FeatureFrame":
        """Concatenate chunk frames row-wise.

        Column sets are unioned (first-use order); a column one chunk
        never materialised is scanned from that chunk's documents, so
        shards whose documents carry different key sets still concatenate
        correctly.  When a column is numeric in one chunk and object in
        another (a string appeared only in some shard), the numeric
        chunks are widened to object — value semantics are unchanged
        because object columns evaluate row-wise.
        """
        frames = [f for f in frames if f is not None]
        if not frames:
            return cls({}, {}, [])
        if len(frames) == 1:
            return frames[0]
        names: Dict[str, None] = {}
        for frame in frames:
            for name in frame._values:
                if name not in names:
                    names[name] = None
        docs: List[Dict[str, Any]] = []
        for frame in frames:
            docs.extend(frame._docs)
        values: Dict[str, np.ndarray] = {}
        missing: Dict[str, Optional[np.ndarray]] = {}
        for name in names:
            parts = [f.values(name) for f in frames]
            masks = [f._missing[name] for f in frames]
            if any(part.dtype == object for part in parts):
                widened = []
                for part, mask in zip(parts, masks):
                    if part.dtype == object:
                        widened.append(part)
                    else:
                        as_obj = part.astype(object)
                        if mask is not None and mask.any():
                            as_obj[mask] = None
                        widened.append(as_obj)
                values[name] = np.concatenate(widened) if widened else np.empty(0, object)
                missing[name] = None
            else:
                values[name] = np.concatenate(parts)
                missing[name] = np.concatenate([m for m in masks])
        return cls(values, missing, docs)

    # -- basic accessors ---------------------------------------------------

    @property
    def n_rows(self) -> int:
        return len(self._docs)

    def __len__(self) -> int:
        return len(self._docs)

    @property
    def column_names(self) -> List[str]:
        return list(self._values)

    def has_column(self, name: str) -> bool:
        return name in self._values

    def values(self, name: str) -> np.ndarray:
        """Column values, materialised lazily from the row documents.

        A frame built with a restricted column set still resolves any
        other field correctly — the column is scanned out of ``_docs`` on
        first use — so filters, sorts, and markings never see a phantom
        all-missing column just because the caller trimmed the scan.
        """
        column = self._values.get(name, _VIRTUAL)
        if column is _VIRTUAL:
            column, missing = _build_column(self._docs, name)
            self._values[name] = column
            self._missing[name] = missing
        return column

    def is_missing(self, name: str) -> np.ndarray:
        """Bool mask: True where the value is absent / ``None``."""
        self.values(name)
        mask = self._missing.get(name)
        if mask is None:
            column = self._values[name]
            mask = np.fromiter((v is None for v in column), dtype=bool, count=len(column))
            self._missing[name] = mask
        return mask

    def documents(self) -> List[Dict[str, Any]]:
        """The shared stored documents, in row order (zero copy).

        Read-only by contract: these are the store's own dicts.  Use
        :meth:`copy_documents` when the caller needs to mutate rows.
        """
        return self._docs

    def copy_documents(self) -> List[Dict[str, Any]]:
        """Copies of the row documents (the document path's contract)."""
        return [dict(doc) for doc in self._docs]  # athena-lint: disable=ATH603

    def column_arrays(self) -> Tuple[Dict[str, np.ndarray], Dict[str, Optional[np.ndarray]]]:
        """The raw (values, missing) dicts — the picklable worker payload."""
        return self._values, self._missing

    # -- row selection -----------------------------------------------------

    def take(self, indices: np.ndarray) -> "FeatureFrame":
        """New frame holding ``indices``' rows (fancy-indexed columns)."""
        indices = np.asarray(indices)
        values = {name: column[indices] for name, column in self._values.items()}
        missing = {
            name: (mask[indices] if mask is not None else None)
            for name, mask in self._missing.items()
        }
        docs = [self._docs[i] for i in indices.tolist()]
        return FeatureFrame(values, missing, docs)

    def mask(self, keep: np.ndarray) -> "FeatureFrame":
        """Rows where the boolean ``keep`` mask is True, order preserved."""
        return self.take(np.nonzero(np.asarray(keep, dtype=bool))[0])

    def head(self, limit: Optional[int]) -> "FeatureFrame":
        if limit is None or self.n_rows <= max(0, limit):
            return self
        return self.take(np.arange(max(0, limit)))

    def select(self, columns: Iterable[str]) -> "FeatureFrame":
        """Frame restricted to (and materialising) ``columns``."""
        values: Dict[str, np.ndarray] = {}
        missing: Dict[str, Optional[np.ndarray]] = {}
        for name in columns:
            values[name] = self.values(name)
            missing[name] = self._missing[name]
        return FeatureFrame(values, missing, self._docs)

    # -- sort (reproduces distdb.query.sort_documents exactly) -------------

    def sort(self, sort: Optional[List[Tuple[str, int]]]) -> "FeatureFrame":
        """Stable Mongo-style sort, bit-compatible with ``sort_documents``.

        Per field (applied in reverse, each pass stable — equivalent to
        the document path's composite key): ascending orders by
        ``(value is None, value)``; descending is Python's stable
        ``reverse=True``.  Numeric NaN-free columns use ``np.lexsort``;
        anything else falls back to Python's sort with the identical key
        (including raising TypeError on cross-type values, as the
        document path does).
        """
        if not sort:
            return self
        order = np.arange(self.n_rows)
        for name, direction in reversed(sort):
            order = order[self._argsort_field(name, order, direction < 0)]
        if (order == np.arange(self.n_rows)).all():
            return self
        return self.take(order)

    def _argsort_field(
        self, name: str, order: np.ndarray, descending: bool
    ) -> np.ndarray:
        # Dotted keys reach into sub-documents the columns don't hold;
        # they sort through get_path like the document path does.
        column = None if "." in name else self.values(name)
        if column is not None and column.dtype != object:
            miss = self.is_missing(name)[order]
            vals = column[order]
            present = vals[~miss]
            if not (len(present) and np.isnan(present).any()):
                vals = np.where(miss, 0.0, vals)
                if descending:
                    # Python's reverse=True: (missing, value) tuples compare
                    # descending, ties keep original order → stable lexsort
                    # on negated keys, missing (flag False after inversion)
                    # first.
                    return np.lexsort((-vals, ~miss))
                return np.lexsort((vals, miss))
        raw = [get_path(self._docs[i], name) for i in order.tolist()]
        ranked = sorted(
            range(len(raw)),
            key=lambda i: (raw[i] is None, raw[i]),
            reverse=descending,
        )
        return np.asarray(ranked, dtype=np.intp)

    # -- matrix handoff ----------------------------------------------------

    def feature_columns(self) -> List[str]:
        """Materialised FEATURE_CATALOG-namespace columns, in order."""
        return [
            name
            for name in self._values
            if name[:1].isalpha() and name == name.upper()
        ]

    def to_matrix(self, features: Optional[Sequence[str]] = None) -> np.ndarray:
        """The ML feature matrix, bit-identical to the per-row loop.

        Mirrors ``Preprocessor._matrix``: numeric values land as float64,
        missing and non-numeric values (including bools) become 0.0.
        """
        names = list(features) if features is not None else self.feature_columns()
        matrix = np.zeros((self.n_rows, len(names)), dtype=np.float64)
        for col, name in enumerate(names):
            column = self.values(name)
            if column.dtype == object:
                matrix[:, col] = np.fromiter(
                    (
                        float(v) if _is_plain_number(v) else 0.0
                        for v in column
                    ),
                    dtype=np.float64,
                    count=len(column),
                )
            else:
                miss = self.is_missing(name)
                if miss.any():
                    matrix[:, col] = np.where(miss, 0.0, column)
                else:
                    matrix[:, col] = column
        return matrix

    def __repr__(self) -> str:
        return f"FeatureFrame(rows={self.n_rows}, columns={len(self._values)})"


# ---------------------------------------------------------------------------
# Filter → mask compilation
# ---------------------------------------------------------------------------


def _rowwise_mask(frame: FeatureFrame, sub_filter: Dict[str, Any]) -> np.ndarray:
    docs = frame.documents()
    return np.fromiter(
        (matches_filter(doc, sub_filter) for doc in docs),
        dtype=bool,
        count=len(docs),
    )


def _numeric_operand(operand: Any) -> bool:
    return isinstance(operand, (int, float)) and not (
        isinstance(operand, float) and np.isnan(operand)
    )


def _compare_mask(frame: FeatureFrame, key: str, op: str, operand: Any) -> np.ndarray:
    """Mask for one ``{key: {op: operand}}`` comparison."""
    n = frame.n_rows
    column = frame.values(key)
    if column.dtype == object:
        # Row-wise evaluation reuses the document path's _compare, so
        # object columns (strings, bools, mixed types) match by
        # construction.
        return np.fromiter(
            (_compare(v, op, operand) for v in column), dtype=bool, count=n
        )
    missing = frame.is_missing(key)
    if op == "$eq":
        if operand is None:
            return missing.copy()
        if _numeric_operand(operand):
            return column == operand
        # No numeric value equals a non-numeric operand; NaN slots
        # (missing) compare unequal too.
        return np.zeros(n, dtype=bool)
    if op == "$ne":
        if operand is None:
            return ~missing
        if _numeric_operand(operand):
            return column != operand
        return np.ones(n, dtype=bool)
    if op == "$exists":
        return ~missing if operand else missing.copy()
    if op in ("$in", "$nin"):
        members = np.isin(
            column,
            [e for e in operand if _numeric_operand(e)],
        )
        if any(e is None for e in operand):
            members |= missing
        return members if op == "$in" else ~members
    if op in ("$gt", "$gte", "$lt", "$lte"):
        if not _numeric_operand(operand):
            # Ordered comparison against a non-numeric operand raises
            # TypeError row-wise, which the document path maps to False.
            return np.zeros(n, dtype=bool)
        with np.errstate(invalid="ignore"):
            if op == "$gt":
                return column > operand
            if op == "$gte":
                return column >= operand
            if op == "$lt":
                return column < operand
            return column <= operand
    raise QueryError(f"unknown comparison operator {op!r}")


def _condition_mask(frame: FeatureFrame, key: str, condition: Any) -> np.ndarray:
    if "." in key:
        # Dotted paths reach into sub-documents the columns don't hold;
        # evaluate those rows through the reference matcher.
        return _rowwise_mask(frame, {key: condition})
    if isinstance(condition, dict) and any(k.startswith("$") for k in condition):
        mask = np.ones(frame.n_rows, dtype=bool)
        for op, operand in condition.items():
            if op == "$not":
                mask &= ~_condition_mask(frame, key, operand)
                continue
            mask &= _compare_mask(frame, key, op, operand)
        return mask
    if isinstance(condition, (dict, list, tuple, set)):
        # Plain equality against a container: elementwise numpy comparison
        # would broadcast, so keep it row-wise.
        return _rowwise_mask(frame, {key: condition})
    return _compare_mask(frame, key, "$eq", condition)


def filter_mask(
    frame: FeatureFrame, filter_: Optional[Dict[str, Any]]
) -> np.ndarray:
    """Boolean row mask equivalent to ``matches_filter`` per document.

    Supports the full filter language (``$eq $ne $gt $gte $lt $lte $in
    $nin $exists``, ``$and $or $nor $not``); numeric columns evaluate
    vectorised, everything else row-wise through the reference matcher —
    so results are identical either way (property-tested in
    ``tests/test_frame.py``).
    """
    n = frame.n_rows
    if not filter_:
        return np.ones(n, dtype=bool)
    mask = np.ones(n, dtype=bool)
    for key, condition in filter_.items():
        if key == "$and":
            for sub in condition:
                mask &= filter_mask(frame, sub)
        elif key == "$or":
            any_mask = np.zeros(n, dtype=bool)
            for sub in condition:
                any_mask |= filter_mask(frame, sub)
            mask &= any_mask
        elif key == "$nor":
            any_mask = np.zeros(n, dtype=bool)
            for sub in condition:
                any_mask |= filter_mask(frame, sub)
            mask &= ~any_mask
        elif key.startswith("$"):
            raise QueryError(f"unknown top-level operator {key!r}")
        else:
            mask &= _condition_mask(frame, key, condition)
    return mask


# ---------------------------------------------------------------------------
# Chunked extraction (the compute-backend map task)
# ---------------------------------------------------------------------------


def _collect_filter_fields(
    filter_: Optional[Dict[str, Any]], out: Dict[str, None]
) -> None:
    if not filter_:
        return
    for key, condition in filter_.items():
        if key in ("$and", "$or", "$nor"):
            for sub in condition:
                _collect_filter_fields(sub, out)
        elif key.startswith("$") or "." in key:
            # Dotted paths evaluate row-wise over the documents; no
            # column needs materialising for them.
            continue
        else:
            out.setdefault(key, None)


def scan_fields(
    columns: Optional[Sequence[str]],
    filter_: Optional[Dict[str, Any]] = None,
    sort: Optional[List[Tuple[str, int]]] = None,
) -> Optional[Tuple[str, ...]]:
    """The columns a masked scan touches, or None for 'all of them'.

    The requested set plus every top-level field the filter or sort
    evaluates, so a column-restricted extraction still materialises what
    the mask compiler and argsort read (anything else falls back to a
    per-row document scan).
    """
    if columns is None:
        return None
    needed = dict.fromkeys(columns)
    _collect_filter_fields(filter_, needed)
    for name, _direction in sort or []:
        if "." not in name:
            needed.setdefault(name, None)
    return tuple(needed)


def extract_chunk(
    docs: List[Dict[str, Any]],
    columns: Optional[Tuple[str, ...]],
    filter_: Optional[Dict[str, Any]],
) -> Tuple[Dict[str, np.ndarray], Dict[str, Optional[np.ndarray]], np.ndarray]:
    """Scan+mask one partition of stored documents into column arrays.

    Module-level and picklable so the process execution backend can ship
    it to pool workers; the driver rebuilds the frame from the returned
    arrays plus its own (fork-shared) document references.  Returns
    ``(values, missing, keep_indices)`` for the rows surviving
    ``filter_``.
    """
    scan = scan_fields(columns, filter_)
    frame = FeatureFrame.from_documents(docs, scan)
    keep = np.nonzero(filter_mask(frame, filter_))[0]
    if len(keep) != frame.n_rows:
        frame = frame.take(keep)
    if columns is not None and scan != tuple(columns):
        # Trim filter-only columns so the worker payload carries exactly
        # the requested set.
        frame = frame.select(columns)
    values, missing = frame.column_arrays()
    return values, missing, keep


def _extract_chunk_task(docs: List[Dict[str, Any]], spec: Tuple[Any, Any]):
    return extract_chunk(docs, spec[0], spec[1])


class ChunkExtractor:
    """Binds (columns, filter) for dispatch through compute backends.

    Picklable whenever the filter is (plain dicts/values), matching the
    backends' pre-flight pickling check.
    """

    def __init__(
        self,
        columns: Optional[Tuple[str, ...]],
        filter_: Optional[Dict[str, Any]],
    ) -> None:
        self.columns = tuple(columns) if columns is not None else None
        self.filter = filter_

    def __call__(self, docs: List[Dict[str, Any]]):
        return extract_chunk(docs, self.columns, self.filter)


def assemble_chunks(
    chunk_results: Sequence[Tuple[Dict[str, np.ndarray], Dict[str, Optional[np.ndarray]], np.ndarray]],
    partitions: Sequence[List[Dict[str, Any]]],
) -> FeatureFrame:
    """Rebuild the result frame from per-chunk arrays + driver-side docs.

    ``chunk_results`` arrive in task (partition) order — the backends'
    determinism contract — so the concatenated frame preserves the
    document path's result order.
    """
    frames = []
    for (values, missing, keep), docs in zip(chunk_results, partitions):
        kept_docs = [docs[i] for i in keep.tolist()]
        frames.append(FeatureFrame.from_columns(values, missing, kept_docs))
    return FeatureFrame.concat(frames)
