"""A Cassandra-style write-optimised store (the paper's proposed fix).

Section VII-C: "the performance overhead of our system primarily originates
from MongoDB related operations.  To boost Athena's performance, we will
consider replacing MongoDB with a high-performance database like
Cassandra."  This module implements that future-work item: a wide-column,
log-structured store whose write path is an append — no secondary-index
maintenance, no per-document wire encoding, replication via cheap buffered
batches — at the cost of scan-based reads.

The public surface duck-types :class:`~repro.distdb.cluster.DatabaseCluster`
(insert/find/count/delete/aggregate/create_index), so
:class:`~repro.core.feature_manager.FeatureManager` and the Cbench harness
can swap backends; ``bench_cassandra_backend`` measures the resulting
Table IX improvement.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, List, Optional, Tuple

from repro.distdb.aggregation import aggregate as _aggregate
from repro.distdb.query import filter_documents, sort_documents, validate_filter
from repro.errors import DatabaseError
from repro.telemetry import get_telemetry


def _hash_value(value: Any) -> int:
    digest = hashlib.md5(repr(value).encode()).digest()
    return int.from_bytes(digest[:4], "big")


class _ColumnFamily:
    """One table on one node: a memtable plus flushed sstables."""

    def __init__(self, flush_threshold: int = 4096) -> None:
        self.flush_threshold = flush_threshold
        self.memtable: List[Dict[str, Any]] = []
        self.sstables: List[List[Dict[str, Any]]] = []
        self.writes = 0
        self.flushes = 0

    def append(self, doc: Dict[str, Any]) -> None:
        # The write path is just an append; cheapness is the point.
        self.memtable.append(doc)
        self.writes += 1
        if len(self.memtable) >= self.flush_threshold:
            self.flush()

    def flush(self) -> None:
        if self.memtable:
            self.sstables.append(self.memtable)
            self.memtable = []
            self.flushes += 1

    def scan(self):
        for sstable in self.sstables:
            yield from sstable
        yield from self.memtable

    def compact(self) -> int:
        """Merge all sstables into one; returns tables merged."""
        merged_count = len(self.sstables)
        if merged_count > 1:
            merged: List[Dict[str, Any]] = []
            for sstable in self.sstables:
                merged.extend(sstable)
            self.sstables = [merged]
        return merged_count

    def rewrite(self, docs: List[Dict[str, Any]]) -> None:
        """Replace all contents (the delete path rewrites segments)."""
        self.sstables = [docs] if docs else []
        self.memtable = []

    def __len__(self) -> int:
        return len(self.memtable) + sum(len(s) for s in self.sstables)


class _ColumnNode:
    """One storage node."""

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self.families: Dict[str, _ColumnFamily] = {}
        self.up = True

    def family(self, name: str) -> _ColumnFamily:
        if name not in self.families:
            self.families[name] = _ColumnFamily()
        return self.families[name]

    def has_family(self, name: str) -> bool:
        return name in self.families


class ColumnStoreCluster:
    """A sharded, replicated, write-optimised document store."""

    def __init__(
        self,
        n_nodes: int = 3,
        partition_key: str = "switch_id",
        replication: int = 2,
    ) -> None:
        if n_nodes < 1:
            raise DatabaseError("cluster needs at least one node")
        self.nodes = [_ColumnNode(i) for i in range(n_nodes)]
        self.partition_key = partition_key
        self.replication = min(max(1, replication), n_nodes)
        self._id_counter = 0
        self.writes = 0
        # Shares athena_distdb_ops_total with DatabaseCluster (the two are
        # interchangeable backends behind the FeatureManager).
        registry = get_telemetry().registry
        self._telemetry_on = registry.enabled
        self._metric_ops = registry.counter(
            "athena_distdb_ops_total",
            "Router operations served, by operation and collection.",
            labelnames=("op", "collection"),
        )

    def _count_op(self, op: str, collection: str) -> None:
        if self._telemetry_on:
            self._metric_ops.labels(op=op, collection=collection).inc()

    # -- routing -----------------------------------------------------------

    def _replica_nodes(self, key_value: Any) -> List[_ColumnNode]:
        start = _hash_value(key_value) % len(self.nodes)
        return [
            self.nodes[(start + offset) % len(self.nodes)]
            for offset in range(self.replication)
        ]

    def _live_nodes(self) -> List[_ColumnNode]:
        live = [n for n in self.nodes if n.up]
        if not live:
            raise DatabaseError("all column-store nodes are down")
        return live

    # -- writes ----------------------------------------------------------------

    def insert_one(self, collection: str, doc: Dict[str, Any]) -> Any:
        self._count_op("insert", collection)
        stored = dict(doc)
        if "_id" not in stored:
            self._id_counter += 1
            stored["_id"] = self._id_counter
        key_value = stored.get(self.partition_key, stored["_id"])
        primary, *replicas = self._replica_nodes(key_value)
        primary.family(collection).append(stored)
        for replica in replicas:
            if replica.up:
                # Replicas share the stored dict: the replication cost is a
                # pointer append (hinted-handoff style), not a deep copy.
                replica.family(collection + "__replica").append(stored)
        self.writes += 1
        return stored["_id"]

    def insert_many(self, collection: str, docs: List[Dict[str, Any]]) -> int:
        for doc in docs:
            self.insert_one(collection, doc)
        return len(docs)

    def delete_many(self, collection: str, filter_: Optional[Dict[str, Any]] = None) -> int:
        self._count_op("delete", collection)
        validate_filter(filter_)
        removed = 0
        for name in (collection, collection + "__replica"):
            for node in self._live_nodes():
                if not node.has_family(name):
                    continue
                family = node.family(name)
                kept = [
                    doc
                    for doc in family.scan()
                    if not _matches(doc, filter_)
                ]
                if name == collection:
                    removed += len(family) - len(kept)
                family.rewrite(kept)
        return removed

    def update_many(
        self, collection: str, filter_: Optional[Dict[str, Any]], changes: Dict[str, Any]
    ) -> int:
        self._count_op("update", collection)
        validate_filter(filter_)
        touched = 0
        for node in self._live_nodes():
            if not node.has_family(collection):
                continue
            for doc in node.family(collection).scan():
                if _matches(doc, filter_):
                    doc.update(changes)
                    touched += 1
        return touched

    # -- reads --------------------------------------------------------------------

    def find(
        self,
        collection: str,
        filter_: Optional[Dict[str, Any]] = None,
        sort: Optional[List[Tuple[str, int]]] = None,
        limit: Optional[int] = None,
        projection: Optional[List[str]] = None,
    ) -> List[Dict[str, Any]]:
        self._count_op("find", collection)
        validate_filter(filter_)
        results: List[Dict[str, Any]] = []
        for node in self._live_nodes():
            if node.has_family(collection):
                results.extend(
                    dict(doc)
                    for doc in filter_documents(
                        node.family(collection).scan(), filter_
                    )
                )
        if sort:
            sort_documents(results, sort)
        if limit is not None:
            results = results[: max(0, limit)]
        if projection:
            keep = set(projection) | {"_id"}
            results = [
                {k: v for k, v in doc.items() if k in keep} for doc in results
            ]
        return results

    def count(self, collection: str, filter_: Optional[Dict[str, Any]] = None) -> int:
        self._count_op("count", collection)
        validate_filter(filter_)
        return sum(
            1
            for node in self._live_nodes()
            if node.has_family(collection)
            for _doc in filter_documents(node.family(collection).scan(), filter_)
        )

    def aggregate(
        self, collection: str, pipeline: List[Dict[str, Any]]
    ) -> List[Dict[str, Any]]:
        self._count_op("aggregate", collection)
        docs = [
            doc
            for node in self._live_nodes()
            if node.has_family(collection)
            for doc in node.family(collection).scan()
        ]
        return _aggregate(docs, pipeline)

    # -- administration ----------------------------------------------------------------

    def create_index(self, collection: str, *fields: str) -> None:
        """No-op: the write-optimised store has no secondary indexes."""

    def document_count(self) -> int:
        return sum(
            len(family)
            for node in self.nodes
            for name, family in node.families.items()
            if not name.endswith("__replica")
        )

    def compact_all(self) -> int:
        """Run compaction everywhere; returns segments merged."""
        return sum(
            family.compact()
            for node in self.nodes
            for family in node.families.values()
        )

    def fail_node(self, node_id: int) -> None:
        self.nodes[node_id].up = False

    def recover_node(self, node_id: int) -> None:
        self.nodes[node_id].up = True

    def op_stats(self) -> Dict[str, Any]:
        return {
            "writes": self.writes,
            "flushes": sum(
                family.flushes
                for node in self.nodes
                for family in node.families.values()
            ),
        }


def _matches(doc: Dict[str, Any], filter_: Optional[Dict[str, Any]]) -> bool:
    from repro.distdb.query import matches_filter

    return matches_filter(doc, filter_)
