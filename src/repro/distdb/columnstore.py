"""A Cassandra-style write-optimised store (the paper's proposed fix).

Section VII-C: "the performance overhead of our system primarily originates
from MongoDB related operations.  To boost Athena's performance, we will
consider replacing MongoDB with a high-performance database like
Cassandra."  This module implements that future-work item: a wide-column,
log-structured store whose write path is an append — no secondary-index
maintenance, no per-document wire encoding, replication via cheap buffered
batches — at the cost of scan-based reads.

The public surface duck-types :class:`~repro.distdb.cluster.DatabaseCluster`
(insert/find/count/delete/aggregate/create_index), so
:class:`~repro.core.feature_manager.FeatureManager` and the Cbench harness
can swap backends; ``bench_cassandra_backend`` measures the resulting
Table IX improvement.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, List, Optional, Tuple

from repro.distdb.aggregation import aggregate as _aggregate
from repro.distdb.frame import FeatureFrame, filter_mask
from repro.distdb.query import filter_documents, sort_documents, validate_filter
from repro.errors import DatabaseError
from repro.perf import fastpath as _fastpath
from repro.telemetry import get_telemetry


def _hash_value(value: Any) -> int:
    digest = hashlib.md5(repr(value).encode()).digest()
    return int.from_bytes(digest[:4], "big")


class _ColumnFamily:
    """One table on one node: a memtable plus flushed sstables."""

    def __init__(self, flush_threshold: int = 4096) -> None:
        self.flush_threshold = flush_threshold
        self.memtable: List[Dict[str, Any]] = []
        self.sstables: List[List[Dict[str, Any]]] = []
        self.writes = 0
        self.flushes = 0

    def append(self, doc: Dict[str, Any]) -> None:
        # The write path is just an append; cheapness is the point.
        self.memtable.append(doc)
        self.writes += 1
        if len(self.memtable) >= self.flush_threshold:
            self.flush()

    def flush(self) -> None:
        if self.memtable:
            self.sstables.append(self.memtable)
            self.memtable = []
            self.flushes += 1

    def scan(self):
        for sstable in self.sstables:
            yield from sstable
        yield from self.memtable

    def compact(self) -> int:
        """Merge all sstables into one; returns tables merged."""
        merged_count = len(self.sstables)
        if merged_count > 1:
            merged: List[Dict[str, Any]] = []
            for sstable in self.sstables:
                merged.extend(sstable)
            self.sstables = [merged]
        return merged_count

    def rewrite(self, docs: List[Dict[str, Any]]) -> None:
        """Replace all contents (the delete path rewrites segments)."""
        self.sstables = [docs] if docs else []
        self.memtable = []

    def __len__(self) -> int:
        return len(self.memtable) + sum(len(s) for s in self.sstables)


class _ColumnNode:
    """One storage node."""

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self.families: Dict[str, _ColumnFamily] = {}
        self.up = True

    def family(self, name: str) -> _ColumnFamily:
        if name not in self.families:
            self.families[name] = _ColumnFamily()
        return self.families[name]

    def has_family(self, name: str) -> bool:
        return name in self.families


class ColumnStoreCluster:
    """A sharded, replicated, write-optimised document store."""

    def __init__(
        self,
        n_nodes: int = 3,
        partition_key: str = "switch_id",
        replication: int = 2,
    ) -> None:
        if n_nodes < 1:
            raise DatabaseError("cluster needs at least one node")
        self.nodes = [_ColumnNode(i) for i in range(n_nodes)]
        self.partition_key = partition_key
        self.replication = min(max(1, replication), n_nodes)
        self._id_counter = 0
        self.writes = 0
        #: Bumped whenever results of a scan could change; the columnar
        #: frame cache keys on it.
        self._generation = 0
        #: collection -> (generation, columns-key, full-scan FeatureFrame).
        self._frame_cache: Dict[str, Tuple[int, Any, FeatureFrame]] = {}
        # Shares athena_distdb_ops_total with DatabaseCluster (the two are
        # interchangeable backends behind the FeatureManager).
        registry = get_telemetry().registry
        self._telemetry_on = registry.enabled
        self._metric_ops = registry.counter(
            "athena_distdb_ops_total",
            "Router operations served, by operation and collection.",
            labelnames=("op", "collection"),
        )

    def _count_op(self, op: str, collection: str) -> None:
        if self._telemetry_on:
            self._metric_ops.labels(op=op, collection=collection).inc()

    # -- routing -----------------------------------------------------------

    def _replica_nodes(self, key_value: Any) -> List[_ColumnNode]:
        start = _hash_value(key_value) % len(self.nodes)
        return [
            self.nodes[(start + offset) % len(self.nodes)]
            for offset in range(self.replication)
        ]

    def _live_nodes(self) -> List[_ColumnNode]:
        live = [n for n in self.nodes if n.up]
        if not live:
            raise DatabaseError("all column-store nodes are down")
        return live

    # -- writes ----------------------------------------------------------------

    def insert_one(self, collection: str, doc: Dict[str, Any]) -> Any:
        self._count_op("insert", collection)
        self._generation += 1
        stored = self._store_doc(doc)
        key_value = stored.get(self.partition_key, stored["_id"])
        primary, *replicas = self._replica_nodes(key_value)
        primary.family(collection).append(stored)
        for replica in replicas:
            if replica.up:
                # Replicas share the stored dict: the replication cost is a
                # pointer append (hinted-handoff style), not a deep copy.
                replica.family(collection + "__replica").append(stored)
        self.writes += 1
        return stored["_id"]

    def _store_doc(self, doc: Dict[str, Any]) -> Dict[str, Any]:
        stored = dict(doc)
        if "_id" not in stored:
            self._id_counter += 1
            stored["_id"] = self._id_counter
        return stored

    def insert_many(self, collection: str, docs: List[Dict[str, Any]]) -> int:
        """Batch insert: one telemetry op, one route per partition key.

        Replica chains are resolved once per distinct partition-key value
        (the batch shape the feature writers produce is many docs per few
        switches), while documents still land in arrival order — so
        memtable contents, flush points, and scan order are identical to
        the per-doc loop's.
        """
        self._count_op("insert", collection)
        self._generation += 1
        replica_name = collection + "__replica"
        routes: Dict[Any, List[_ColumnNode]] = {}
        for doc in docs:
            stored = self._store_doc(doc)
            key_value = stored.get(self.partition_key, stored["_id"])
            try:
                chain = routes.get(key_value)
            except TypeError:  # unhashable key value: route directly
                chain = None
            else:
                if chain is None:
                    chain = self._replica_nodes(key_value)
                    routes[key_value] = chain
            if chain is None:
                chain = self._replica_nodes(key_value)
            chain[0].family(collection).append(stored)
            for replica in chain[1:]:
                if replica.up:
                    replica.family(replica_name).append(stored)
        self.writes += len(docs)
        return len(docs)

    def delete_many(self, collection: str, filter_: Optional[Dict[str, Any]] = None) -> int:
        self._count_op("delete", collection)
        validate_filter(filter_)
        self._generation += 1
        removed = 0
        for name in (collection, collection + "__replica"):
            for node in self._live_nodes():
                if not node.has_family(name):
                    continue
                family = node.family(name)
                kept = [
                    doc
                    for doc in family.scan()
                    if not _matches(doc, filter_)
                ]
                if name == collection:
                    removed += len(family) - len(kept)
                family.rewrite(kept)
        return removed

    def update_many(
        self, collection: str, filter_: Optional[Dict[str, Any]], changes: Dict[str, Any]
    ) -> int:
        self._count_op("update", collection)
        validate_filter(filter_)
        self._generation += 1
        touched = 0
        for node in self._live_nodes():
            if not node.has_family(collection):
                continue
            for doc in node.family(collection).scan():
                if _matches(doc, filter_):
                    doc.update(changes)
                    touched += 1
        return touched

    # -- reads --------------------------------------------------------------------

    def find(
        self,
        collection: str,
        filter_: Optional[Dict[str, Any]] = None,
        sort: Optional[List[Tuple[str, int]]] = None,
        limit: Optional[int] = None,
        projection: Optional[List[str]] = None,
    ) -> List[Dict[str, Any]]:
        self._count_op("find", collection)
        validate_filter(filter_)
        if not _fastpath.ENABLED:
            return self._find_reference(collection, filter_, sort, limit, projection)
        # Zero-copy read (the PR-4 distdb contract): filter the raw stored
        # documents, sort and trim the *references*, and copy only the
        # post-limit survivors out.
        matched: List[Dict[str, Any]] = []
        for node in self._live_nodes():
            if node.has_family(collection):
                matched.extend(
                    filter_documents(node.family(collection).scan(), filter_)
                )
        if sort:
            sort_documents(matched, sort)
        if limit is not None:
            matched = matched[: max(0, limit)]
        results = [dict(doc) for doc in matched]
        if projection:
            keep = set(projection) | {"_id"}
            results = [
                {k: v for k, v in doc.items() if k in keep} for doc in results
            ]
        return results

    def _find_reference(
        self,
        collection: str,
        filter_: Optional[Dict[str, Any]],
        sort: Optional[List[Tuple[str, int]]],
        limit: Optional[int],
        projection: Optional[List[str]],
    ) -> List[Dict[str, Any]]:
        """The original copy-then-trim scan (``ATHENA_FAST_PATH=0``)."""
        results: List[Dict[str, Any]] = []
        for node in self._live_nodes():
            if node.has_family(collection):
                results.extend(
                    dict(doc)
                    for doc in filter_documents(
                        node.family(collection).scan(), filter_
                    )
                )
        if sort:
            sort_documents(results, sort)
        if limit is not None:
            results = results[: max(0, limit)]
        if projection:
            keep = set(projection) | {"_id"}
            results = [
                {k: v for k, v in doc.items() if k in keep} for doc in results
            ]
        return results

    def frame(
        self,
        collection: str,
        columns: Optional[Tuple[str, ...]] = None,
    ) -> FeatureFrame:
        """Full-scan :class:`FeatureFrame` over the collection, cached.

        Columns are materialised once per store generation (any write
        invalidates) straight from the shared stored documents — the
        columnar path's answer to the store having no secondary indexes.
        Row order matches :meth:`find`'s pre-sort scan order exactly.
        """
        columns_key = tuple(columns) if columns is not None else None
        cached = self._frame_cache.get(collection)
        if cached is not None:
            generation, cached_key, frame = cached
            if generation == self._generation and cached_key == columns_key:
                return frame
        docs = [
            doc
            for node in self._live_nodes()
            if node.has_family(collection)
            for doc in node.family(collection).scan()
        ]
        frame = FeatureFrame.from_documents(docs, columns)
        self._frame_cache[collection] = (self._generation, columns_key, frame)
        return frame

    def find_frame(
        self,
        collection: str,
        filter_: Optional[Dict[str, Any]] = None,
        sort: Optional[List[Tuple[str, int]]] = None,
        limit: Optional[int] = None,
        columns: Optional[Tuple[str, ...]] = None,
    ) -> FeatureFrame:
        """Vectorised find: scan → boolean mask → argsort → head.

        Selects exactly the rows :meth:`find` returns, in the same order,
        as a frame over the shared stored documents (no copies).
        """
        self._count_op("find_frame", collection)
        validate_filter(filter_)
        frame = self.frame(collection, columns)
        if filter_:
            frame = frame.mask(filter_mask(frame, filter_))
        if sort:
            frame = frame.sort(sort)
        if limit is not None:
            frame = frame.head(limit)
        return frame

    def count(self, collection: str, filter_: Optional[Dict[str, Any]] = None) -> int:
        self._count_op("count", collection)
        validate_filter(filter_)
        return sum(
            1
            for node in self._live_nodes()
            if node.has_family(collection)
            for _doc in filter_documents(node.family(collection).scan(), filter_)
        )

    def aggregate(
        self, collection: str, pipeline: List[Dict[str, Any]]
    ) -> List[Dict[str, Any]]:
        self._count_op("aggregate", collection)
        docs = [
            doc
            for node in self._live_nodes()
            if node.has_family(collection)
            for doc in node.family(collection).scan()
        ]
        return _aggregate(docs, pipeline)

    # -- administration ----------------------------------------------------------------

    def create_index(self, collection: str, *fields: str) -> None:
        """No-op: the write-optimised store has no secondary indexes."""

    def document_count(self) -> int:
        return sum(
            len(family)
            for node in self.nodes
            for name, family in node.families.items()
            if not name.endswith("__replica")
        )

    def compact_all(self) -> int:
        """Run compaction everywhere; returns segments merged."""
        return sum(
            family.compact()
            for node in self.nodes
            for family in node.families.values()
        )

    def fail_node(self, node_id: int) -> None:
        self.nodes[node_id].up = False
        self._generation += 1

    def recover_node(self, node_id: int) -> None:
        self.nodes[node_id].up = True
        self._generation += 1

    def op_stats(self) -> Dict[str, Any]:
        return {
            "writes": self.writes,
            "flushes": sum(
                family.flushes
                for node in self.nodes
                for family in node.families.values()
            ),
        }


def _matches(doc: Dict[str, Any], filter_: Optional[Dict[str, Any]]) -> bool:
    from repro.distdb.query import matches_filter

    return matches_filter(doc, filter_)
