"""The database cluster router.

Routes documents to shards by a hash of the shard key, targets single shards
when a query pins the key, and scatter-gathers otherwise.  Aggregation
pipelines with a leading ``$match``/``$group`` execute per shard and merge at
the router when the accumulators allow it; otherwise raw documents are pulled
and aggregated centrally (the correctness-preserving fallback).
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.distdb.aggregation import aggregate, merge_grouped
from repro.distdb.frame import FeatureFrame, filter_mask, scan_fields
from repro.distdb.query import equality_value, sort_documents, validate_filter
from repro.distdb.shard import ShardNode
from repro.errors import AllShardsDownError, DatabaseError, ShardDownError
from repro.telemetry import get_telemetry

#: Operation labels shared by the router's telemetry instruments.
_DB_OPS = ("insert", "delete", "update", "find", "find_frame", "count", "aggregate")


def _hash_value(value: Any) -> int:
    digest = hashlib.md5(repr(value).encode()).digest()
    return int.from_bytes(digest[:4], "big")


class DatabaseCluster:
    """A sharded document store with a Mongo-like client interface."""

    def __init__(
        self,
        n_shards: int = 3,
        shard_key: str = "_id",
        replication: int = 2,
    ) -> None:
        if n_shards < 1:
            raise DatabaseError("cluster needs at least one shard")
        if replication < 1:
            raise DatabaseError("replication factor must be >= 1")
        self.shards = [ShardNode(i) for i in range(n_shards)]
        self.shard_key = shard_key
        #: Copies of each document (1 primary + replicas), as in a Mongo
        #: replica set; replicas live on the next shards round-robin.
        self.replication = min(replication, n_shards) if n_shards > 1 else 1
        self.router_ops = 0
        self.bytes_on_wire = 0
        #: Bumped whenever a scan's result set could change; the columnar
        #: frame cache keys on it.
        self._generation = 0
        #: collection -> (generation, full-scan frame, id(doc) -> row).
        self._frame_cache: Dict[
            str, Tuple[int, FeatureFrame, Dict[int, int]]
        ] = {}
        #: Shards with injected replication lag: replica copies destined
        #: for a lagging shard queue here and apply when the lag ends.
        self._replica_lag: Dict[int, List[Tuple[str, Dict[str, Any]]]] = {}
        # Telemetry: the per-op counter takes a dynamic ``collection``
        # label, so the hot write path guards on a captured enabled flag
        # instead of paying the labels() lookup when disabled.
        registry = get_telemetry().registry
        self._telemetry_on = registry.enabled
        self._metric_ops = registry.counter(
            "athena_distdb_ops_total",
            "Router operations served, by operation and collection.",
            labelnames=("op", "collection"),
        )
        op_seconds = registry.histogram(
            "athena_distdb_op_seconds",
            "Wall seconds per router operation.",
            labelnames=("op",),
        )
        self._op_timers = {op: op_seconds.labels(op=op) for op in _DB_OPS}
        self._metric_wire_bytes = registry.counter(
            "athena_distdb_wire_bytes_total",
            "Driver-side wire bytes encoded for inserts.",
        )

    # -- routing ---------------------------------------------------------

    def _shard_for(self, value: Any) -> ShardNode:
        shard = self.shards[_hash_value(value) % len(self.shards)]
        shard.ensure_up()
        return shard

    def _live_shards(self) -> List[ShardNode]:
        live = [s for s in self.shards if s.up]
        if not live:
            raise AllShardsDownError()
        return live

    # -- writes ------------------------------------------------------------

    @staticmethod
    def _replica_name(collection: str) -> str:
        return collection + "__replica"

    def _insert_one_impl(self, collection: str, doc: Dict[str, Any]) -> Any:
        self.router_ops += 1
        self._generation += 1
        # Driver-side wire encoding (the BSON step a real client performs);
        # this is genuine per-insert CPU work, which is what makes the
        # Table IX 'DB operations dominate' result measurable.
        encoded = len(json.dumps(doc, default=str, separators=(",", ":")))
        self.bytes_on_wire += encoded
        self._metric_wire_bytes.inc(encoded)
        key_value = doc.get(self.shard_key)
        if key_value is None:
            # No shard key: route by insertion order hash of the whole doc.
            key_value = id(doc)
        home = self.shards[_hash_value(key_value) % len(self.shards)]
        chain = [
            self.shards[(home.node_id + offset) % len(self.shards)]
            for offset in range(self.replication)
        ]
        # Replica-set semantics: the first live node in the chain acts as
        # primary; with no replication a dead home shard fails the write.
        live = [shard for shard in chain if shard.up]
        if not live:
            if not any(shard.up for shard in self.shards):
                raise AllShardsDownError()
            raise ShardDownError(home.node_id)
        primary = live[0]
        inserted_id = primary.collection(collection).insert_one(doc)
        replica_name = self._replica_name(collection)
        for replica in live[1:]:
            copy = dict(doc)
            copy["_id"] = inserted_id
            lagged = self._replica_lag.get(replica.node_id)
            if lagged is not None:
                lagged.append((replica_name, copy))
            else:
                replica.collection(replica_name).insert_one(copy)
        return inserted_id

    def insert_many(self, collection: str, docs: List[Dict[str, Any]]) -> int:
        for doc in docs:
            self.insert_one(collection, doc)
        return len(docs)

    def _delete_many_impl(self, collection: str, filter_: Optional[Dict[str, Any]] = None) -> int:
        self.router_ops += 1
        self._generation += 1
        validate_filter(filter_)
        removed = 0
        for name in (collection, self._replica_name(collection)):
            for shard in self._live_shards():
                if shard.has_collection(name):
                    count = shard.collection(name).delete_many(filter_)
                    if name == collection:
                        removed += count
        return removed

    def _update_many_impl(
        self, collection: str, filter_: Optional[Dict[str, Any]], changes: Dict[str, Any]
    ) -> int:
        self.router_ops += 1
        self._generation += 1
        touched = 0
        for name in (collection, self._replica_name(collection)):
            for shard in self._live_shards():
                if shard.has_collection(name):
                    count = shard.collection(name).update_many(filter_, changes)
                    if name == collection:
                        touched += count
        return touched

    # -- reads ----------------------------------------------------------------

    def _find_impl(
        self,
        collection: str,
        filter_: Optional[Dict[str, Any]] = None,
        sort: Optional[List[Tuple[str, int]]] = None,
        limit: Optional[int] = None,
        projection: Optional[List[str]] = None,
    ) -> List[Dict[str, Any]]:
        self.router_ops += 1
        validate_filter(filter_)
        pinned = equality_value(filter_, self.shard_key)
        if pinned is not None:
            shards = [self._shard_for(pinned)]
        else:
            shards = self._live_shards()
        results: List[Dict[str, Any]] = []
        for shard in shards:
            if shard.has_collection(collection):
                results.extend(
                    shard.collection(collection).find(
                        filter_, projection=projection
                    )
                )
        if sort:
            sort_documents(results, sort)
        if limit is not None:
            results = results[: max(0, limit)]
        return results

    def shard_candidates(
        self,
        collection: str,
        filter_: Optional[Dict[str, Any]] = None,
    ) -> List[List[Dict[str, Any]]]:
        """Raw per-shard candidate documents, in routing order, zero-copy.

        One list per shard the document path would consult (the pinned
        shard when the filter fixes the shard key, every live shard
        otherwise), each in that shard collection's candidate order — the
        partitions the columnar path extracts from, in parallel or not.
        Callers must treat the documents as read-only.
        """
        validate_filter(filter_)
        pinned = equality_value(filter_, self.shard_key)
        if pinned is not None:
            shards = [self._shard_for(pinned)]
        else:
            shards = self._live_shards()
        return [
            shard.collection(collection).raw_candidates(filter_)
            for shard in shards
            if shard.has_collection(collection)
        ]

    def _frame_index(
        self, collection: str
    ) -> Tuple[FeatureFrame, Dict[int, int]]:
        """The cached full-scan frame plus its document -> row map.

        Columns are materialised once per store generation (any write,
        shard failure, or recovery invalidates); every ``find_frame``
        afterwards is pure array work.  The row map keys on document
        identity — the cache holds references to the stored dicts, so the
        ids stay valid exactly as long as the generation does.
        """
        cached = self._frame_cache.get(collection)
        if cached is not None and cached[0] == self._generation:
            return cached[1], cached[2]
        frame = FeatureFrame.concat(
            [
                FeatureFrame.from_documents(docs)
                for docs in self.shard_candidates(collection, None)
            ]
        )
        rows = {id(doc): i for i, doc in enumerate(frame.documents())}
        self._frame_cache[collection] = (self._generation, frame, rows)
        return frame, rows

    def _find_frame_impl(
        self,
        collection: str,
        filter_: Optional[Dict[str, Any]] = None,
        sort: Optional[List[Tuple[str, int]]] = None,
        limit: Optional[int] = None,
        columns: Optional[Tuple[str, ...]] = None,
    ) -> FeatureFrame:
        """Vectorised find: cached columns, candidate gather, mask, sort.

        Returns a :class:`FeatureFrame` over the shared stored documents
        holding exactly the rows :meth:`find` would return, in the same
        order (docs/PERF.md equivalence contract): the rows are gathered
        in the document path's own candidate order before masking, so
        index-served filters line up byte-for-byte.
        """
        self.router_ops += 1
        full, rows = self._frame_index(collection)
        scan = scan_fields(columns, filter_, sort)
        if scan is not None:
            full = full.select(scan)
        if filter_ is None:
            # Full scan: candidate order is the cached frame's row order.
            frame = full
        else:
            # Index-served candidates come back in bucket order, not
            # insertion order, so the gather must follow the document
            # path's own candidate sequence even when it covers every row.
            partitions = self.shard_candidates(collection, filter_)
            indices = np.fromiter(
                (rows[id(doc)] for part in partitions for doc in part),
                dtype=np.intp,
                count=sum(len(part) for part in partitions),
            )
            frame = full.take(indices)
        keep = filter_mask(frame, filter_)
        if not keep.all():
            frame = frame.mask(keep)
        if sort:
            frame = frame.sort(sort)
        if limit is not None:
            frame = frame.head(limit)
        if columns is not None and scan != tuple(columns):
            frame = frame.select(columns)
        return frame

    def _count_impl(self, collection: str, filter_: Optional[Dict[str, Any]] = None) -> int:
        self.router_ops += 1
        return sum(
            shard.collection(collection).count(filter_)
            for shard in self._live_shards()
            if shard.has_collection(collection)
        )

    def _aggregate_impl(
        self, collection: str, pipeline: List[Dict[str, Any]]
    ) -> List[Dict[str, Any]]:
        """Run a pipeline, pushing work to shards when mergeable."""
        self.router_ops += 1
        group_idx = next(
            (i for i, stage in enumerate(pipeline) if "$group" in stage), None
        )
        if group_idx is not None:
            spec = pipeline[group_idx]["$group"]
            mergeable = all(
                next(iter(acc)) in ("$sum", "$count", "$min", "$max")
                for field, acc in spec.items()
                if field != "_id"
            )
            prefix_ok = all(
                "$match" in stage for stage in pipeline[:group_idx]
            )
            if mergeable and prefix_ok:
                partials = [
                    aggregate(
                        shard.collection(collection).all_documents(),
                        pipeline[: group_idx + 1],
                    )
                    for shard in self._live_shards()
                    if shard.has_collection(collection)
                ]
                merged = merge_grouped(partials, spec)
                return aggregate(merged, pipeline[group_idx + 1 :])
        docs = [
            doc
            for shard in self._live_shards()
            if shard.has_collection(collection)
            for doc in shard.collection(collection).all_documents()
        ]
        return aggregate(docs, pipeline)


    # -- instrumented public surface ------------------------------------------

    def _tracked(self, op: str, collection: str, impl, *args: Any) -> Any:
        """Run one router op under its counter and latency timer."""
        self._metric_ops.labels(op=op, collection=collection).inc()
        with self._op_timers[op].time():
            return impl(collection, *args)

    def insert_one(self, collection: str, doc: Dict[str, Any]) -> Any:
        if not self._telemetry_on:
            return self._insert_one_impl(collection, doc)
        return self._tracked("insert", collection, self._insert_one_impl, doc)

    def delete_many(
        self, collection: str, filter_: Optional[Dict[str, Any]] = None
    ) -> int:
        if not self._telemetry_on:
            return self._delete_many_impl(collection, filter_)
        return self._tracked("delete", collection, self._delete_many_impl, filter_)

    def update_many(
        self, collection: str, filter_: Optional[Dict[str, Any]], changes: Dict[str, Any]
    ) -> int:
        if not self._telemetry_on:
            return self._update_many_impl(collection, filter_, changes)
        return self._tracked(
            "update", collection, self._update_many_impl, filter_, changes
        )

    def find(
        self,
        collection: str,
        filter_: Optional[Dict[str, Any]] = None,
        sort: Optional[List[Tuple[str, int]]] = None,
        limit: Optional[int] = None,
        projection: Optional[List[str]] = None,
    ) -> List[Dict[str, Any]]:
        if not self._telemetry_on:
            return self._find_impl(collection, filter_, sort, limit, projection)
        return self._tracked(
            "find", collection, self._find_impl, filter_, sort, limit, projection
        )

    def find_frame(
        self,
        collection: str,
        filter_: Optional[Dict[str, Any]] = None,
        sort: Optional[List[Tuple[str, int]]] = None,
        limit: Optional[int] = None,
        columns: Optional[Tuple[str, ...]] = None,
    ) -> FeatureFrame:
        if not self._telemetry_on:
            return self._find_frame_impl(collection, filter_, sort, limit, columns)
        return self._tracked(
            "find_frame", collection, self._find_frame_impl, filter_, sort, limit, columns
        )

    def count(self, collection: str, filter_: Optional[Dict[str, Any]] = None) -> int:
        if not self._telemetry_on:
            return self._count_impl(collection, filter_)
        return self._tracked("count", collection, self._count_impl, filter_)

    def aggregate(
        self, collection: str, pipeline: List[Dict[str, Any]]
    ) -> List[Dict[str, Any]]:
        if not self._telemetry_on:
            return self._aggregate_impl(collection, pipeline)
        return self._tracked("aggregate", collection, self._aggregate_impl, pipeline)

    # -- administration -----------------------------------------------------------

    def create_index(self, collection: str, *fields: str) -> None:
        for shard in self.shards:
            shard.collection(collection).create_index(*fields)

    def document_count(self) -> int:
        return sum(shard.document_count() for shard in self.shards)

    def shard_status(self) -> List[Dict[str, Any]]:
        """Per-shard liveness and size, for health endpoints and runbooks.

        The serving tier's ``/api/health`` exposes these rows verbatim, so
        the keys are API surface (docs/API.md).
        """
        return [
            {
                "node_id": shard.node_id,
                "up": shard.up,
                "documents": shard.document_count(),
                "replica_lag_depth": self.replica_lag_depth(shard.node_id),
            }
            for shard in self.shards
        ]

    def op_stats(self) -> Dict[str, Any]:
        totals: Dict[str, Any] = {"router_ops": self.router_ops}
        for shard in self.shards:
            for op, count in shard.op_stats().items():
                totals[op] = totals.get(op, 0) + count
        return totals

    def fail_shard(self, node_id: int) -> None:
        self.shards[node_id].up = False
        self._generation += 1

    def recover_shard(self, node_id: int) -> None:
        self.shards[node_id].up = True
        self._generation += 1

    # -- injected replication lag -------------------------------------------

    def begin_replica_lag(self, node_id: int) -> None:
        """Start lagging replica writes destined for ``node_id``.

        The primary copy of every document still lands synchronously; only
        the replica copies queue up, as when a secondary falls behind the
        oplog in a real replica set.
        """
        if not 0 <= node_id < len(self.shards):
            raise DatabaseError(f"no shard {node_id}")
        self._replica_lag.setdefault(node_id, [])

    def end_replica_lag(self, node_id: int) -> int:
        """Catch the shard up: apply every queued replica write."""
        queued = self._replica_lag.pop(node_id, [])
        shard = self.shards[node_id]
        for name, doc in queued:
            shard.collection(name).insert_one(doc)
        if queued:
            self._generation += 1
        return len(queued)

    def replica_lag_depth(self, node_id: int) -> int:
        """Replica writes queued for a lagging shard (0 if not lagging)."""
        return len(self._replica_lag.get(node_id, []))
