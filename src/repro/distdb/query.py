"""The filter language of the document store.

A filter is a dict in the MongoDB style::

    {"switch_id": 3}                          # equality
    {"packet_count": {"$gt": 100, "$lte": 500}}
    {"$or": [{"proto": 6}, {"proto": 17}]}
    {"meta.app_id": "fwd"}                    # dotted path into sub-documents

Supported comparison operators: ``$eq $ne $gt $gte $lt $lte $in $nin
$exists``; logical: ``$and $or $nor $not``.
"""

# athena-lint: hot-path

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.errors import QueryError

COMPARISON_OPS = {"$eq", "$ne", "$gt", "$gte", "$lt", "$lte", "$in", "$nin", "$exists"}
LOGICAL_OPS = {"$and", "$or", "$nor"}


def get_path(doc: Dict[str, Any], path: str) -> Any:
    """Resolve a dotted path inside a document; missing keys give ``None``."""
    current: Any = doc
    for part in path.split("."):
        if not isinstance(current, dict):
            return None
        current = current.get(part)
    return current


def _compare(value: Any, op: str, operand: Any) -> bool:
    if op == "$eq":
        return value == operand
    if op == "$ne":
        return value != operand
    if op == "$exists":
        return (value is not None) == bool(operand)
    if op == "$in":
        return value in operand
    if op == "$nin":
        return value not in operand
    # Ordered comparisons never match missing or cross-type values.
    if value is None:
        return False
    try:
        if op == "$gt":
            return value > operand
        if op == "$gte":
            return value >= operand
        if op == "$lt":
            return value < operand
        if op == "$lte":
            return value <= operand
    except TypeError:
        return False
    raise QueryError(f"unknown comparison operator {op!r}")


def matches_filter(doc: Dict[str, Any], filter_: Optional[Dict[str, Any]]) -> bool:
    """Evaluate ``filter_`` against ``doc``."""
    if not filter_:
        return True
    for key, condition in filter_.items():
        if key == "$and":
            if not all(matches_filter(doc, sub) for sub in condition):
                return False
        elif key == "$or":
            if not any(matches_filter(doc, sub) for sub in condition):
                return False
        elif key == "$nor":
            if any(matches_filter(doc, sub) for sub in condition):
                return False
        elif key.startswith("$"):
            raise QueryError(f"unknown top-level operator {key!r}")
        else:
            value = get_path(doc, key)
            if isinstance(condition, dict) and any(
                k.startswith("$") for k in condition
            ):
                for op, operand in condition.items():
                    if op == "$not":
                        if matches_filter(doc, {key: operand}):
                            return False
                        continue
                    if op not in COMPARISON_OPS:
                        raise QueryError(f"unknown operator {op!r}")
                    if not _compare(value, op, operand):
                        return False
            else:
                if value != condition:
                    return False
    return True


def validate_filter(filter_: Optional[Dict[str, Any]]) -> None:
    """Raise :class:`QueryError` on any malformed construct in ``filter_``."""
    if filter_ is None:
        return
    if not isinstance(filter_, dict):
        raise QueryError(f"filter must be a dict, got {type(filter_).__name__}")
    for key, condition in filter_.items():
        if key in LOGICAL_OPS:
            if not isinstance(condition, (list, tuple)):
                raise QueryError(f"{key} expects a list of sub-filters")
            for sub in condition:
                validate_filter(sub)
        elif key.startswith("$"):
            raise QueryError(f"unknown top-level operator {key!r}")
        elif isinstance(condition, dict) and any(
            k.startswith("$") for k in condition
        ):
            for op, operand in condition.items():
                if op == "$not":
                    validate_filter({key: operand})
                elif op not in COMPARISON_OPS:
                    raise QueryError(f"unknown operator {op!r}")
                elif op in ("$in", "$nin") and not isinstance(
                    operand, (list, tuple, set)
                ):
                    raise QueryError(f"{op} expects a sequence")


def equality_value(filter_: Optional[Dict[str, Any]], field: str) -> Optional[Any]:
    """If the filter pins ``field`` to one value, return it (shard routing).

    ``None`` is ambiguous here — it means both "not pinned" and "pinned to
    None".  Shard routing treats the two the same (scatter-gather), but
    index selection must not; use :func:`equality_pin` there.
    """
    value = equality_pin(filter_, field)
    return None if value is MISSING else value


#: Sentinel distinguishing "field not pinned" from "pinned to None".
MISSING = object()


def equality_pin(filter_: Optional[Dict[str, Any]], field: str) -> Any:
    """The value ``filter_`` pins ``field`` to, or :data:`MISSING`.

    A field counts as pinned by a top-level direct equality
    (``{"k": v}``) or an explicit ``$eq`` inside an operator dict
    (``{"k": {"$eq": v, ...}}``); ``None`` is a legitimate pinned value.
    """
    if not filter_ or field not in filter_:
        return MISSING
    condition = filter_[field]
    if isinstance(condition, dict) and any(k.startswith("$") for k in condition):
        return condition.get("$eq", MISSING)
    return condition


def collect_equality_pins(filter_: Optional[Dict[str, Any]]) -> Dict[str, Any]:
    """Every field the filter pins to a single value (index selection).

    Besides top-level pins, descends into ``$and`` conjuncts: a document
    matching ``{"$and": [...]}`` must satisfy every conjunct, so each
    conjunct's pins narrow the candidate set soundly.  ``$or`` / ``$nor``
    / ``$not`` never contribute pins.
    """
    pins: Dict[str, Any] = {}
    if not filter_:
        return pins
    for key, condition in filter_.items():
        if key == "$and" and isinstance(condition, (list, tuple)):
            for sub in condition:
                pins.update(collect_equality_pins(sub))
        elif not key.startswith("$"):
            value = equality_pin(filter_, key)
            if value is not MISSING:
                pins[key] = value
    return pins


def sort_documents(
    docs: List[Dict[str, Any]], sort: Optional[List[Tuple[str, int]]]
) -> List[Dict[str, Any]]:
    """Sort ``docs`` in place by a Mongo-style ``[(field, +1/-1)]`` spec.

    Missing values order first ascending / last descending, like the
    historical per-field passes.  When every field shares one direction
    the list is sorted once with a composite key; mixed directions fall
    back to stable per-field passes (still computing each key once per
    document — Python's sort calls ``key`` once per element).
    """
    if not sort:
        return docs
    directions = {direction for _field, direction in sort}
    if len(directions) == 1:
        descending = directions.pop() < 0
        names = [name for name, _direction in sort]
        if len(names) == 1:
            name = names[0]

            def single_key(doc: Dict[str, Any]) -> Tuple[bool, Any]:
                value = get_path(doc, name)
                return (value is None, value)

            docs.sort(key=single_key, reverse=descending)
        else:

            def composite_key(doc: Dict[str, Any]) -> Tuple[Any, ...]:
                key: List[Any] = []
                for name in names:
                    value = get_path(doc, name)
                    key.append((value is None, value))
                return tuple(key)

            docs.sort(key=composite_key, reverse=descending)
        return docs
    for name, direction in reversed(sort):

        def field_key(doc: Dict[str, Any], _name: str = name) -> Tuple[bool, Any]:
            value = get_path(doc, _name)
            return (value is None, value)

        docs.sort(key=field_key, reverse=direction < 0)
    return docs


def filter_documents(
    docs: Iterable[Dict[str, Any]], filter_: Optional[Dict[str, Any]]
) -> Iterable[Dict[str, Any]]:
    """Lazily yield the documents matching ``filter_``."""
    for doc in docs:
        if matches_filter(doc, filter_):
            yield doc
