"""A single-node document collection with hash indexes.

Documents are plain dicts; inserting copies them and assigns an ``_id``.
Equality lookups on indexed fields use the hash index; everything else scans.
The collection also counts operations and approximate bytes handled, which
the Cbench experiment uses to report where overhead went.
"""

from __future__ import annotations

import itertools
from collections import defaultdict
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.distdb.query import (
    equality_value,
    filter_documents,
    get_path,
    matches_filter,
    validate_filter,
)
from repro.errors import DatabaseError

_id_counter = itertools.count(1)


def approx_size(doc: Dict[str, Any]) -> int:
    """Rough BSON-like size estimate used for byte accounting."""
    size = 8
    for key, value in doc.items():
        size += len(key) + 2
        if isinstance(value, str):
            size += len(value) + 5
        elif isinstance(value, (int, float, bool)) or value is None:
            size += 9
        elif isinstance(value, dict):
            size += approx_size(value)
        elif isinstance(value, (list, tuple)):
            size += 5 + 9 * len(value)
        else:
            size += 16
    return size


class Collection:
    """An in-memory document collection."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._docs: Dict[Any, Dict[str, Any]] = {}
        self._indexes: Dict[str, Dict[Any, set]] = {}
        # Operation accounting.
        self.ops = defaultdict(int)
        self.bytes_written = 0
        self.bytes_read = 0

    def __len__(self) -> int:
        return len(self._docs)

    # -- indexing ----------------------------------------------------------

    def create_index(self, field: str) -> None:
        """Build (or rebuild) a hash index over ``field``."""
        index: Dict[Any, set] = defaultdict(set)
        for _id, doc in self._docs.items():
            index[get_path(doc, field)].add(_id)
        self._indexes[field] = index

    def _index_add(self, doc: Dict[str, Any]) -> None:
        for field, index in self._indexes.items():
            index.setdefault(get_path(doc, field), set()).add(doc["_id"])

    def _index_remove(self, doc: Dict[str, Any]) -> None:
        for field, index in self._indexes.items():
            bucket = index.get(get_path(doc, field))
            if bucket is not None:
                bucket.discard(doc["_id"])

    # -- writes --------------------------------------------------------------

    def insert_one(self, doc: Dict[str, Any]) -> Any:
        if not isinstance(doc, dict):
            raise DatabaseError("documents must be dicts")
        stored = dict(doc)
        if "_id" not in stored:
            stored["_id"] = next(_id_counter)
        if stored["_id"] in self._docs:
            raise DatabaseError(f"duplicate _id {stored['_id']!r}")
        self._docs[stored["_id"]] = stored
        self._index_add(stored)
        self.ops["insert"] += 1
        self.bytes_written += approx_size(stored)
        return stored["_id"]

    def insert_many(self, docs: Iterable[Dict[str, Any]]) -> List[Any]:
        return [self.insert_one(doc) for doc in docs]

    def delete_many(self, filter_: Optional[Dict[str, Any]] = None) -> int:
        validate_filter(filter_)
        doomed = [doc["_id"] for doc in self._candidates(filter_) if matches_filter(doc, filter_)]
        for _id in doomed:
            doc = self._docs.pop(_id)
            self._index_remove(doc)
        self.ops["delete"] += 1
        return len(doomed)

    def update_many(
        self, filter_: Optional[Dict[str, Any]], changes: Dict[str, Any]
    ) -> int:
        """Set top-level fields on every matching document."""
        validate_filter(filter_)
        touched = 0
        for doc in list(self._candidates(filter_)):
            if matches_filter(doc, filter_):
                self._index_remove(doc)
                doc.update(changes)
                self._index_add(doc)
                touched += 1
        self.ops["update"] += 1
        return touched

    # -- reads -----------------------------------------------------------------

    def _candidates(
        self, filter_: Optional[Dict[str, Any]]
    ) -> Iterable[Dict[str, Any]]:
        """Use a hash index when the filter pins an indexed field."""
        for field in self._indexes:
            value = equality_value(filter_, field)
            if value is not None:
                ids = self._indexes[field].get(value, set())
                return [self._docs[_id] for _id in ids if _id in self._docs]
        return self._docs.values()

    def find(
        self,
        filter_: Optional[Dict[str, Any]] = None,
        sort: Optional[List[Tuple[str, int]]] = None,
        limit: Optional[int] = None,
        projection: Optional[List[str]] = None,
    ) -> List[Dict[str, Any]]:
        """Query the collection. ``sort`` is a list of (field, +1/-1)."""
        validate_filter(filter_)
        self.ops["find"] += 1
        results = [
            dict(doc) for doc in filter_documents(self._candidates(filter_), filter_)
        ]
        self.bytes_read += sum(approx_size(d) for d in results)
        if sort:
            for field, direction in reversed(sort):
                results.sort(
                    key=lambda d: (get_path(d, field) is None, get_path(d, field)),
                    reverse=direction < 0,
                )
        if limit is not None:
            results = results[: max(0, limit)]
        if projection:
            keep = set(projection) | {"_id"}
            results = [{k: v for k, v in doc.items() if k in keep} for doc in results]
        return results

    def count(self, filter_: Optional[Dict[str, Any]] = None) -> int:
        validate_filter(filter_)
        self.ops["count"] += 1
        return sum(
            1 for _ in filter_documents(self._candidates(filter_), filter_)
        )

    def all_documents(self) -> List[Dict[str, Any]]:
        """Snapshot of every stored document (aggregation input)."""
        return list(self._docs.values())
