"""A single-node document collection with hash indexes.

Documents are plain dicts; inserting copies them and assigns an ``_id``.
Equality lookups on indexed fields use the hash index; everything else scans.
The collection also counts operations and approximate bytes handled, which
the Cbench experiment uses to report where overhead went.

Reads take a zero-copy fast path by default (docs/PERF.md): ``find``
filters the raw stored documents, memoizes each document's byte estimate
per ``_id`` (invalidated on update/delete), sorts and limits *before*
copying, and only the surviving documents are copied out.  Compound
``(field, field)`` hash indexes serve the feature store's per-flow
queries, whose filters pin a pair of fields inside an ``$and``.  With
``ATHENA_FAST_PATH=0`` the original copy-then-trim read path runs
instead; both return identical results and identical byte accounting.
"""

# athena-lint: hot-path

from __future__ import annotations

import itertools
from collections import defaultdict
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.distdb.query import (
    MISSING,
    collect_equality_pins,
    equality_pin,
    filter_documents,
    get_path,
    matches_filter,
    sort_documents,
    validate_filter,
)
from repro.errors import DatabaseError
from repro.perf import fastpath as _fastpath

_id_counter = itertools.count(1)


def approx_size(doc: Dict[str, Any]) -> int:
    """Rough BSON-like size estimate used for byte accounting."""
    size = 8
    for key, value in doc.items():
        size += len(key) + 2
        if isinstance(value, str):
            size += len(value) + 5
        elif isinstance(value, (int, float, bool)) or value is None:
            size += 9
        elif isinstance(value, dict):
            size += approx_size(value)
        elif isinstance(value, (list, tuple)):
            size += 5 + 9 * len(value)
        else:
            size += 16
    return size


class Collection:
    """An in-memory document collection."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._docs: Dict[Any, Dict[str, Any]] = {}
        self._indexes: Dict[str, Dict[Any, set]] = {}
        #: (field, ...) tuple -> value tuple -> _ids; maintained alongside
        #: the single-field indexes and consulted first when a filter pins
        #: every field of the compound key.
        self._compound_indexes: Dict[Tuple[str, ...], Dict[Tuple[Any, ...], set]] = {}
        #: _id -> memoized approx_size of the stored document.
        self._size_cache: Dict[Any, int] = {}
        # Operation accounting.
        self.ops = defaultdict(int)
        self.bytes_written = 0
        self.bytes_read = 0

    def __len__(self) -> int:
        return len(self._docs)

    # -- indexing ----------------------------------------------------------

    def create_index(self, *fields: str) -> None:
        """Build (or rebuild) a hash index over ``fields``.

        One field builds the classic single-field index; several build a
        compound index keyed on the tuple of their values.
        """
        if not fields:
            raise DatabaseError("create_index needs at least one field")
        if len(fields) == 1:
            field = fields[0]
            index: Dict[Any, set] = defaultdict(set)
            for _id, doc in self._docs.items():
                index[get_path(doc, field)].add(_id)
            self._indexes[field] = index
            return
        compound: Dict[Tuple[Any, ...], set] = defaultdict(set)
        for _id, doc in self._docs.items():
            compound[tuple(get_path(doc, f) for f in fields)].add(_id)
        self._compound_indexes[tuple(fields)] = compound

    def _index_add(self, doc: Dict[str, Any]) -> None:
        for field, index in self._indexes.items():
            index.setdefault(get_path(doc, field), set()).add(doc["_id"])
        for fields, index in self._compound_indexes.items():
            key = tuple(get_path(doc, f) for f in fields)
            index.setdefault(key, set()).add(doc["_id"])

    def _index_remove(self, doc: Dict[str, Any]) -> None:
        for field, index in self._indexes.items():
            bucket = index.get(get_path(doc, field))
            if bucket is not None:
                bucket.discard(doc["_id"])
        for fields, index in self._compound_indexes.items():
            bucket = index.get(tuple(get_path(doc, f) for f in fields))
            if bucket is not None:
                bucket.discard(doc["_id"])

    # -- writes --------------------------------------------------------------

    def insert_one(self, doc: Dict[str, Any]) -> Any:
        if not isinstance(doc, dict):
            raise DatabaseError("documents must be dicts")
        stored = dict(doc)
        if "_id" not in stored:
            stored["_id"] = next(_id_counter)
        if stored["_id"] in self._docs:
            raise DatabaseError(f"duplicate _id {stored['_id']!r}")
        self._docs[stored["_id"]] = stored
        self._index_add(stored)
        self.ops["insert"] += 1
        size = approx_size(stored)
        self._size_cache[stored["_id"]] = size
        self.bytes_written += size
        return stored["_id"]

    def insert_many(self, docs: Iterable[Dict[str, Any]]) -> List[Any]:
        return [self.insert_one(doc) for doc in docs]

    def delete_many(self, filter_: Optional[Dict[str, Any]] = None) -> int:
        validate_filter(filter_)
        doomed = [doc["_id"] for doc in self._candidates(filter_) if matches_filter(doc, filter_)]
        for _id in doomed:
            doc = self._docs.pop(_id)
            self._index_remove(doc)
            self._size_cache.pop(_id, None)
        self.ops["delete"] += 1
        return len(doomed)

    def update_many(
        self, filter_: Optional[Dict[str, Any]], changes: Dict[str, Any]
    ) -> int:
        """Set top-level fields on every matching document."""
        validate_filter(filter_)
        touched = 0
        for doc in list(self._candidates(filter_)):
            if matches_filter(doc, filter_):
                self._index_remove(doc)
                doc.update(changes)
                self._index_add(doc)
                self._size_cache.pop(doc["_id"], None)
                touched += 1
        self.ops["update"] += 1
        return touched

    # -- reads -----------------------------------------------------------------

    def _approx_size_cached(self, doc: Dict[str, Any]) -> int:
        _id = doc["_id"]
        size = self._size_cache.get(_id)
        if size is None:
            size = approx_size(doc)
            self._size_cache[_id] = size
        return size

    def _candidates(
        self, filter_: Optional[Dict[str, Any]]
    ) -> Iterable[Dict[str, Any]]:
        """Use a hash index when the filter pins an indexed field.

        ``None`` is a legitimate pinned value (the sentinel-based pin
        extraction keeps "pinned to None" distinct from "not pinned"); on
        the fast path, pins inside ``$and`` conjuncts count and compound
        indexes are consulted before single-field ones.
        """
        if not _fastpath.ENABLED:
            for field in self._indexes:
                value = equality_pin(filter_, field)
                if value is not MISSING:
                    try:
                        ids = self._indexes[field].get(value, set())
                    except TypeError:  # unhashable pin value
                        continue
                    return [self._docs[_id] for _id in ids if _id in self._docs]
            return self._docs.values()
        pins = collect_equality_pins(filter_)
        if pins:
            for fields, index in self._compound_indexes.items():
                if all(f in pins for f in fields):
                    try:
                        ids = index.get(tuple(pins[f] for f in fields), set())
                    except TypeError:
                        continue
                    return [self._docs[_id] for _id in ids if _id in self._docs]
            for field in self._indexes:
                if field in pins:
                    try:
                        ids = self._indexes[field].get(pins[field], set())
                    except TypeError:
                        continue
                    return [self._docs[_id] for _id in ids if _id in self._docs]
        return self._docs.values()

    def raw_candidates(
        self, filter_: Optional[Dict[str, Any]] = None
    ) -> List[Dict[str, Any]]:
        """Raw *stored* documents the filter could match, never copied.

        The columnar frame path (docs/PERF.md) scans these straight into
        numpy columns; callers must treat the dicts as read-only.  Order
        is exactly the order ``find`` evaluates candidates in — index
        buckets first when the filter pins an indexed field, insertion
        order otherwise — which is what keeps frame rows byte-aligned
        with document-path results.
        """
        validate_filter(filter_)
        candidates = self._candidates(filter_)
        return candidates if isinstance(candidates, list) else list(candidates)

    def find(
        self,
        filter_: Optional[Dict[str, Any]] = None,
        sort: Optional[List[Tuple[str, int]]] = None,
        limit: Optional[int] = None,
        projection: Optional[List[str]] = None,
    ) -> List[Dict[str, Any]]:
        """Query the collection. ``sort`` is a list of (field, +1/-1)."""
        validate_filter(filter_)
        self.ops["find"] += 1
        if not _fastpath.ENABLED:
            return self._find_reference(filter_, sort, limit, projection)
        matched = list(filter_documents(self._candidates(filter_), filter_))
        # Byte accounting covers every matched document (pre-limit), with
        # the same totals as the reference path — just memoized.
        self.bytes_read += sum(self._approx_size_cached(d) for d in matched)
        if sort:
            sort_documents(matched, sort)
        if limit is not None:
            matched = matched[: max(0, limit)]
        results = [dict(doc) for doc in matched]
        if projection:
            keep = set(projection) | {"_id"}
            results = [{k: v for k, v in doc.items() if k in keep} for doc in results]
        return results

    def _find_reference(
        self,
        filter_: Optional[Dict[str, Any]],
        sort: Optional[List[Tuple[str, int]]],
        limit: Optional[int],
        projection: Optional[List[str]],
    ) -> List[Dict[str, Any]]:
        """The original copy-then-trim read path (``ATHENA_FAST_PATH=0``)."""
        results = [
            dict(doc) for doc in filter_documents(self._candidates(filter_), filter_)
        ]
        self.bytes_read += sum(approx_size(d) for d in results)
        if sort:
            sort_documents(results, sort)
        if limit is not None:
            results = results[: max(0, limit)]
        if projection:
            keep = set(projection) | {"_id"}
            results = [{k: v for k, v in doc.items() if k in keep} for doc in results]
        return results

    def count(self, filter_: Optional[Dict[str, Any]] = None) -> int:
        validate_filter(filter_)
        self.ops["count"] += 1
        return sum(
            1 for _ in filter_documents(self._candidates(filter_), filter_)
        )

    def all_documents(self) -> List[Dict[str, Any]]:
        """Snapshot of every stored document (aggregation input)."""
        return list(self._docs.values())
