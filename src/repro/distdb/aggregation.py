"""Aggregation pipelines.

Implements the pipeline subset Athena's query options (sorting, aggregation,
limiting — Table IV) compile to::

    [{"$match": {...}},
     {"$group": {"_id": "$switch_id", "total": {"$sum": "$packet_count"}}},
     {"$sort": {"total": -1}},
     {"$limit": 10},
     {"$project": ["total"]}]

Group accumulators: ``$sum $avg $min $max $count $first $last``.  Group keys
and accumulator operands reference fields with a ``$`` prefix; ``_id`` may
also be a dict of named ``$field`` references for compound keys.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Iterable, List, Optional

from repro.distdb.query import get_path, matches_filter, validate_filter
from repro.errors import QueryError

ACCUMULATORS = {"$sum", "$avg", "$min", "$max", "$count", "$first", "$last"}


def _resolve(doc: Dict[str, Any], ref: Any) -> Any:
    """Resolve a ``$field`` reference or pass a literal through."""
    if isinstance(ref, str) and ref.startswith("$"):
        return get_path(doc, ref[1:])
    return ref


def _group_key(doc: Dict[str, Any], id_spec: Any) -> Any:
    if isinstance(id_spec, dict):
        return tuple((name, _resolve(doc, ref)) for name, ref in sorted(id_spec.items()))
    return _resolve(doc, id_spec)


def _key_to_id(key: Any, id_spec: Any) -> Any:
    if isinstance(id_spec, dict):
        return dict(key)
    return key


class _Accumulator:
    """Streaming accumulator for one output field of a $group."""

    def __init__(self, op: str, operand: Any) -> None:
        if op not in ACCUMULATORS:
            raise QueryError(f"unknown accumulator {op!r}")
        self.op = op
        self.operand = operand
        self.total = 0.0
        self.count = 0
        self.extreme: Any = None
        self.first: Any = None
        self.last: Any = None

    def feed(self, doc: Dict[str, Any]) -> None:
        value = _resolve(doc, self.operand)
        if self.op == "$count":
            self.count += 1
            return
        if value is None:
            return
        if self.count == 0:
            self.first = value
        self.last = value
        self.count += 1
        if self.op in ("$sum", "$avg"):
            self.total += value
        elif self.op == "$min":
            self.extreme = value if self.extreme is None else min(self.extreme, value)
        elif self.op == "$max":
            self.extreme = value if self.extreme is None else max(self.extreme, value)

    def result(self) -> Any:
        if self.op == "$sum":
            return self.total
        if self.op == "$avg":
            return self.total / self.count if self.count else None
        if self.op == "$count":
            return self.count
        if self.op in ("$min", "$max"):
            return self.extreme
        if self.op == "$first":
            return self.first
        return self.last


def _apply_group(docs: Iterable[Dict[str, Any]], spec: Dict[str, Any]) -> List[Dict[str, Any]]:
    if "_id" not in spec:
        raise QueryError("$group requires an _id")
    id_spec = spec["_id"]
    groups: "OrderedDict[Any, Dict[str, _Accumulator]]" = OrderedDict()
    for doc in docs:
        key = _group_key(doc, id_spec)
        if key not in groups:
            accumulators = {}
            for out_field, acc_spec in spec.items():
                if out_field == "_id":
                    continue
                if not isinstance(acc_spec, dict) or len(acc_spec) != 1:
                    raise QueryError(f"bad accumulator spec for {out_field!r}")
                (op, operand), = acc_spec.items()
                accumulators[out_field] = _Accumulator(op, operand)
            groups[key] = accumulators
        for accumulator in groups[key].values():
            accumulator.feed(doc)
    results = []
    for key, accumulators in groups.items():
        row = {"_id": _key_to_id(key, id_spec)}
        for out_field, accumulator in accumulators.items():
            row[out_field] = accumulator.result()
        results.append(row)
    return results


def aggregate(
    docs: Iterable[Dict[str, Any]], pipeline: List[Dict[str, Any]]
) -> List[Dict[str, Any]]:
    """Run an aggregation pipeline over an iterable of documents."""
    current: List[Dict[str, Any]] = list(docs)
    for stage in pipeline:
        if not isinstance(stage, dict) or len(stage) != 1:
            raise QueryError(f"each pipeline stage must be a single-key dict: {stage!r}")
        (op, spec), = stage.items()
        if op == "$match":
            validate_filter(spec)
            current = [doc for doc in current if matches_filter(doc, spec)]
        elif op == "$group":
            current = _apply_group(current, spec)
        elif op == "$sort":
            for field, direction in reversed(list(spec.items())):
                current.sort(
                    key=lambda d: (get_path(d, field) is None, get_path(d, field)),
                    reverse=direction < 0,
                )
        elif op == "$limit":
            current = current[: max(0, int(spec))]
        elif op == "$skip":
            current = current[max(0, int(spec)):]
        elif op == "$project":
            keep = set(spec) | {"_id"}
            current = [
                {k: v for k, v in doc.items() if k in keep} for doc in current
            ]
        else:
            raise QueryError(f"unknown pipeline stage {op!r}")
    return current


def merge_grouped(
    partials: List[List[Dict[str, Any]]], spec: Dict[str, Any]
) -> List[Dict[str, Any]]:
    """Merge per-shard $group outputs into a global result.

    ``$avg`` cannot be merged from averages alone, so the router re-groups
    from raw documents for pipelines containing ``$avg``; this helper only
    handles the mergeable accumulators and is used for the common case.
    """
    merged: "OrderedDict[Any, Dict[str, Any]]" = OrderedDict()
    for partial in partials:
        for row in partial:
            key = row["_id"] if not isinstance(row["_id"], dict) else tuple(
                sorted(row["_id"].items())
            )
            if key not in merged:
                merged[key] = dict(row)
                continue
            target = merged[key]
            for out_field, acc_spec in spec.items():
                if out_field == "_id":
                    continue
                (op, _), = acc_spec.items()
                if op in ("$sum", "$count"):
                    target[out_field] += row[out_field]
                elif op == "$min":
                    target[out_field] = min(target[out_field], row[out_field])
                elif op == "$max":
                    target[out_field] = max(target[out_field], row[out_field])
                elif op == "$first":
                    pass
                elif op == "$last":
                    target[out_field] = row[out_field]
                else:
                    raise QueryError(f"accumulator {op} is not shard-mergeable")
    return list(merged.values())
