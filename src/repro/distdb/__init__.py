"""A sharded, Mongo-like document store.

Athena publishes every generated feature to a distributed database and the
Feature Manager translates NB-API queries into database queries.  This
package stands in for the paper's MongoDB 3.2 cluster: documents are dicts,
filters use the ``$``-operator language, collections maintain hash indexes,
and a router shards documents across nodes by a hash of the shard key.

The store does *real* work per operation (copying, index maintenance,
filter evaluation), which is what makes the Table IX result — most of
Athena's overhead comes from DB operations — reproducible by measurement
rather than by assumption.
"""

from repro.distdb.aggregation import aggregate
from repro.distdb.collection import Collection
from repro.distdb.cluster import DatabaseCluster
from repro.distdb.columnstore import ColumnStoreCluster
from repro.distdb.frame import FeatureFrame, filter_mask
from repro.distdb.query import matches_filter, validate_filter
from repro.distdb.shard import ShardNode

__all__ = [
    "aggregate",
    "Collection",
    "DatabaseCluster",
    "ColumnStoreCluster",
    "FeatureFrame",
    "filter_mask",
    "matches_filter",
    "validate_filter",
    "ShardNode",
]
