"""A shard node: one storage server in the database cluster."""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.distdb.collection import Collection
from repro.errors import ShardDownError


class ShardNode:
    """One database node holding a subset of every collection."""

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self._collections: Dict[str, Collection] = {}
        self.up = True

    def collection(self, name: str) -> Collection:
        if name not in self._collections:
            self._collections[name] = Collection(f"{name}@shard{self.node_id}")
        return self._collections[name]

    def has_collection(self, name: str) -> bool:
        return name in self._collections

    def collection_names(self) -> List[str]:
        return sorted(self._collections)

    def document_count(self) -> int:
        return sum(len(c) for c in self._collections.values())

    def ensure_up(self) -> None:
        if not self.up:
            raise ShardDownError(self.node_id)

    def op_stats(self) -> Dict[str, Any]:
        """Aggregate op counters across this node's collections."""
        totals: Dict[str, Any] = {"bytes_written": 0, "bytes_read": 0}
        for coll in self._collections.values():
            totals["bytes_written"] += coll.bytes_written
            totals["bytes_read"] += coll.bytes_read
            for op, count in coll.ops.items():
                totals[op] = totals.get(op, 0) + count
        return totals
