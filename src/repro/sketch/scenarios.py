"""Detection scenarios fed from sketch features alone (docs/SKETCH.md).

Runs the :mod:`repro.workloads.sketchscale` attack streams through a
feature state (sketch or exact), publishes the resulting per-window
``SKETCH_*`` documents into a sharded feature store, and drives the real
detector-manager plumbing — query validation against the catalog,
preprocessing with label marking, a calibrated threshold model — to
produce per-(switch, window) alerts.

The same entry point runs both paths, which is how the equivalence tests
(and ``benchmarks/bench_sketch.py``) hold sketch-path recall within a
fixed tolerance of exact-path recall, and how the determinism tests
digest the alert stream and sketch serialisation.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.sketch.features import ExactWindowState, SketchFeatureState
from repro.workloads.sketchscale import SketchScaleGenerator, SketchScaleSpec

#: The single discriminating feature each scenario thresholds on; the
#: remaining names ride along so the documents exercise the full scope.
SCENARIO_FEATURES: Dict[str, str] = {
    "ddos": "SKETCH_UNIQUE_SRC_EST",
    "portscan": "SKETCH_UNIQUE_DST_PORT_EST",
}

#: Recall on sketch features must come within this of the exact path
#: (matches repro.chaos.scenarios.RECALL_TOLERANCE).
SKETCH_RECALL_TOLERANCE = 0.25


@dataclass
class SketchScenarioOutcome:
    """One scenario run: alerts, quality, and determinism digests."""

    scenario: str
    seed: int
    path: str  # "sketch" | "exact"
    n_documents: int
    n_attack_cells: int
    recall: float
    false_alarm_rate: float
    threshold: float
    alerts: List[Tuple[int, int]] = field(default_factory=list)  # (dpid, window)
    #: sha256 over the canonical alert stream (determinism contract).
    alert_digest: str = ""
    #: sha256 over the final sketch-state serialisation ("" on the exact path).
    state_digest: str = ""
    #: Resident bytes of the feature state after the full stream.
    state_nbytes: int = 0


def _alert_digest(alerts: List[Tuple[int, int]]) -> str:
    canonical = json.dumps(sorted(alerts), separators=(",", ":")).encode()
    return hashlib.sha256(canonical).hexdigest()


def build_documents(
    spec: SketchScaleSpec, use_sketch: bool = True
) -> Tuple[List[Dict[str, float]], object]:
    """Run the workload through a fresh state; returns (documents, state)."""
    generator = SketchScaleGenerator(spec)
    state = (
        SketchFeatureState(seed=spec.seed)
        if use_sketch
        else ExactWindowState(seed=spec.seed)
    )
    return generator.run(state), state


def detect(
    documents: List[Dict[str, float]], scenario: str, n_shards: int = 3
) -> Tuple[List[Tuple[int, int]], float, float, float]:
    """Threshold detection over sketch documents via the manager stack.

    Publishes the documents into a sharded store, generates a calibrated
    threshold model on the scenario's discriminating feature (the bound
    is learned from benign-marked rows — no labels are consulted at
    prediction time), and returns ``(alerts, recall, false_alarm_rate,
    threshold)``.
    """
    from repro.compute import ComputeCluster
    from repro.core.algorithm import GenerateAlgorithm
    from repro.core.detector_manager import DetectorManager
    from repro.core.feature_manager import FeatureManager
    from repro.core.preprocessor import GeneratePreprocessor
    from repro.core.query import GenerateQuery
    from repro.core.southbound import AttackDetector
    from repro.distdb import DatabaseCluster

    feature = SCENARIO_FEATURES[scenario]
    manager = FeatureManager(DatabaseCluster(n_shards=n_shards, replication=2))
    manager.publish_documents(documents)
    detector = DetectorManager(manager, AttackDetector(ComputeCluster(2)))
    query = GenerateQuery("feature_scope == sketch && SKETCH_OBSERVATIONS > 0")
    preprocessor = GeneratePreprocessor(
        normalization=None, marking="label", features=[feature]
    )
    algorithm = GenerateAlgorithm("threshold", column=0)
    model = detector.generate_detection_model(query, preprocessor, algorithm)
    summary = detector.validate_features(query, preprocessor, model)

    stored = manager.request_features(query)
    matrix, _, kept = model.preprocessor.transform(stored)
    predictions = model.estimator.predict(matrix)
    alerts = sorted(
        (int(doc["switch_id"]), int(doc["timestamp"]))
        for doc, verdict in zip(kept, predictions)
        if verdict
    )
    return (
        alerts,
        summary.detection_rate,
        summary.false_alarm_rate,
        float(model.estimator.threshold),
    )


def run_sketch_scenario(
    spec: Optional[SketchScaleSpec] = None,
    scenario: str = "ddos",
    use_sketch: bool = True,
    n_shards: int = 3,
) -> SketchScenarioOutcome:
    """Full pipeline: workload → feature state → store → threshold alerts."""
    if spec is None:
        spec = SketchScaleSpec(scenario=scenario)
    documents, state = build_documents(spec, use_sketch=use_sketch)
    alerts, recall, false_alarms, threshold = detect(
        documents, spec.scenario, n_shards=n_shards
    )
    state_digest = ""
    if isinstance(state, SketchFeatureState):
        state_digest = hashlib.sha256(state.to_bytes()).hexdigest()
    return SketchScenarioOutcome(
        scenario=spec.scenario,
        seed=spec.seed,
        path="sketch" if use_sketch else "exact",
        n_documents=len(documents),
        n_attack_cells=sum(1 for d in documents if d.get("label")),
        recall=recall,
        false_alarm_rate=false_alarms,
        threshold=threshold,
        alerts=alerts,
        alert_digest=_alert_digest(alerts),
        state_digest=state_digest,
        state_nbytes=state.nbytes(),
    )


def sharded_documents(
    spec: SketchScaleSpec, n_shards: int = 3
) -> Tuple[List[Dict[str, float]], List[SketchFeatureState]]:
    """Build per-shard sketch states (events partitioned by flow id) and
    the documents of their merge.

    Models the distributed deployment: each shard sketches only its
    partition of the stream, and a combiner merges the shard states
    before rolling windows.  Used by the chaos tests to show that losing
    a shard's state and recovering it from its serialised replica yields
    the same merged sketch.
    """
    generator = SketchScaleGenerator(spec)
    shards = [SketchFeatureState(seed=spec.seed) for _ in range(n_shards)]
    documents: List[Dict[str, float]] = []
    current_window = 0

    def roll(window: int) -> None:
        combined = SketchFeatureState(seed=spec.seed)
        for shard in shards:
            combined.merge(SketchFeatureState.from_bytes(shard.to_bytes()))
        for dpid in range(1, spec.n_switches + 1):
            fields = combined.roll(dpid)
            if not fields["SKETCH_OBSERVATIONS"]:
                continue
            document: Dict[str, float] = {
                "feature_scope": "sketch",
                "switch_id": dpid,
                "instance_id": 0,
                "timestamp": float(window),
                "label": generator.label(dpid, window),
            }
            document.update(fields)
            documents.append(document)
        for shard in shards:
            for dpid in range(1, spec.n_switches + 1):
                shard.roll(dpid)

    for chunk in generator.chunks():
        if chunk.window != current_window:
            roll(current_window)
            current_window = chunk.window
        for i in range(len(chunk)):
            shard = shards[int(chunk.flow_id[i]) % n_shards]
            shard.observe(
                int(chunk.dpid[i]),
                int(chunk.flow_id[i]),
                int(chunk.src[i]),
                int(chunk.dst_port[i]),
                packets=int(chunk.packets[i]),
                bytes_=int(chunk.bytes_[i]),
            )
    roll(current_window)
    return documents, shards
