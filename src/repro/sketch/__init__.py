"""Probabilistic sketches for sublinear-memory feature extraction.

The exact feature path (:mod:`repro.core.features.stateful`) keeps one
dict entry per live flow, which is linear in distinct flows — the wall
between the 2M-entry columnar path and million-host scale.  This package
trades exactness for *bounded* error at *bounded* memory:

* :class:`~repro.sketch.cms.CountMinSketch` — per-flow byte/packet
  counts and heavy hitters (over-estimate only, error ≤ ε·N w.p. 1−δ).
* :class:`~repro.sketch.hll.HyperLogLog` — unique src-IP / dst-port
  cardinality (relative error ≈ 1.04/√m).
* :class:`~repro.sketch.bloom.BloomFilter` — previously-seen-host
  membership (no false negatives, analytic false-positive bound).

All three are seeded and deterministic (pure-python 64-bit mixing, no
dependency on ``PYTHONHASHSEED``), picklable, byte-serialisable, and
mergeable so the compute backends can combine per-partition sketches.
:mod:`repro.sketch.features` turns them into the ``SKETCH_*`` scope of
the feature catalog behind the ``ATHENA_SKETCH`` flag.
"""

from repro.sketch.bloom import BloomFilter
from repro.sketch.cms import CountMinSketch
from repro.sketch.features import (
    SKETCH_FEATURE_NAMES,
    ExactWindowState,
    SketchFeatureState,
    SketchParams,
)
from repro.sketch.hashing import hash64, key_to_int, mix64
from repro.sketch.hll import HyperLogLog

__all__ = [
    "BloomFilter",
    "CountMinSketch",
    "HyperLogLog",
    "SketchFeatureState",
    "ExactWindowState",
    "SketchParams",
    "SKETCH_FEATURE_NAMES",
    "hash64",
    "key_to_int",
    "mix64",
]
