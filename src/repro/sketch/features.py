"""The ``SKETCH_*`` feature scope: sketch-backed per-switch features.

:class:`SketchFeatureState` is the sketch-path counterpart of the exact
:class:`~repro.core.features.stateful.FlowStateTable`: the generator
feeds it every flow observation, and once per sampling round it *rolls*
a switch's window into one sketch-scoped feature record.  Per window and
per switch it keeps two Count-Min sketches (packet and byte counts, with
running heavy-hitter maxima), two HyperLogLogs (unique sources, unique
destination ports) and exact tallies; a *persistent* per-switch Bloom
filter remembers every source host ever observed, so the
previously-seen-host ratio survives across windows.

Memory is bounded by the sketch parameters — independent of how many
distinct flows pass through a window — which is what the million-flow
workload in :mod:`repro.workloads.sketchscale` exercises.

:class:`ExactWindowState` exposes the same ``observe``/``roll`` API and
emits the same field names computed from exact dicts and sets.  It is
the equivalence baseline for the scenario recall tests and the
linear-memory reference the benchmark extrapolates against.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.sketch.bloom import BloomFilter
from repro.sketch.cms import CountMinSketch, SketchError
from repro.sketch.hll import HyperLogLog

#: Every feature the sketch scope emits, in catalog (and emission) order.
SKETCH_FEATURE_NAMES: Tuple[str, ...] = (
    "SKETCH_OBSERVATIONS",
    "SKETCH_TOTAL_PACKETS",
    "SKETCH_TOTAL_BYTES",
    "SKETCH_HEAVY_HITTER_PACKETS",
    "SKETCH_HEAVY_HITTER_BYTES",
    "SKETCH_HH_PACKET_SHARE",
    "SKETCH_UNIQUE_SRC_EST",
    "SKETCH_UNIQUE_DST_PORT_EST",
    "SKETCH_FLOWS_PER_SRC_EST",
    "SKETCH_PORTS_PER_SRC_EST",
    "SKETCH_SEEN_HOST_RATIO",
)

_STATE_MAGIC = b"SKST"


@dataclass(frozen=True)
class SketchParams:
    """Sizing knobs for one switch's sketch set (docs/SKETCH.md table)."""

    cms_epsilon: float = 0.001  # width ⌈e/ε⌉ = 2719 counters per row
    cms_delta: float = 0.01  # depth ⌈ln(1/δ)⌉ = 5 rows
    hll_p: int = 12  # m = 4096 registers, σ ≈ 1.6%
    bloom_capacity: int = 200_000  # seen-host memory per switch
    bloom_fp: float = 0.01


class _SwitchSketches:
    """One switch's window sketches plus its persistent seen-host Bloom."""

    __slots__ = (
        "cms_packets",
        "cms_bytes",
        "hll_src",
        "hll_dst_port",
        "bloom_hosts",
        "hh_packets",
        "hh_bytes",
        "observations",
        "seen_hits",
        "total_packets",
        "total_bytes",
    )

    def __init__(self, params: SketchParams, seed: int):
        self.bloom_hosts = BloomFilter(
            capacity=params.bloom_capacity, fp_rate=params.bloom_fp, seed=seed
        )
        self._fresh_window(params, seed)

    def _fresh_window(self, params: SketchParams, seed: int) -> None:
        self.cms_packets = CountMinSketch(params.cms_epsilon, params.cms_delta, seed)
        self.cms_bytes = CountMinSketch(params.cms_epsilon, params.cms_delta, seed + 1)
        self.hll_src = HyperLogLog(params.hll_p, seed + 2)
        self.hll_dst_port = HyperLogLog(params.hll_p, seed + 3)
        self.hh_packets = 0
        self.hh_bytes = 0
        self.observations = 0
        self.seen_hits = 0
        self.total_packets = 0
        self.total_bytes = 0


class SketchFeatureState:
    """Per-switch sketch windows with deterministic rolling and merging."""

    def __init__(self, params: Optional[SketchParams] = None, seed: int = 0):
        self.params = params or SketchParams()
        self.seed = int(seed)
        self._switches: Dict[int, _SwitchSketches] = {}

    # -- ingestion -----------------------------------------------------

    def _switch(self, dpid: int) -> _SwitchSketches:
        state = self._switches.get(dpid)
        if state is None:
            # Derive the switch seed deterministically so shards built in
            # any dpid order serialise identically.
            state = _SwitchSketches(self.params, self.seed + 1000 * dpid)
            self._switches[dpid] = state
        return state

    def observe(
        self,
        dpid: int,
        flow_key: Any,
        src: Any,
        dst_port: Any,
        packets: int = 1,
        bytes_: int = 0,
    ) -> None:
        """Fold one flow observation into the switch's current window."""
        state = self._switch(dpid)
        packets = max(0, int(packets))
        bytes_ = max(0, int(bytes_))
        estimate = state.cms_packets.add(flow_key, packets)
        if estimate > state.hh_packets:
            state.hh_packets = estimate
        estimate = state.cms_bytes.add(flow_key, bytes_)
        if estimate > state.hh_bytes:
            state.hh_bytes = estimate
        state.hll_src.add(src)
        state.hll_dst_port.add(dst_port)
        state.seen_hits += state.bloom_hosts.add(src)
        state.observations += 1
        state.total_packets += packets
        state.total_bytes += bytes_

    # -- emission ------------------------------------------------------

    @staticmethod
    def _fields(state: _SwitchSketches) -> Dict[str, float]:
        observations = state.observations
        unique_src = state.hll_src.cardinality() if observations else 0.0
        unique_port = state.hll_dst_port.cardinality() if observations else 0.0
        return {
            "SKETCH_OBSERVATIONS": float(observations),
            "SKETCH_TOTAL_PACKETS": float(state.total_packets),
            "SKETCH_TOTAL_BYTES": float(state.total_bytes),
            "SKETCH_HEAVY_HITTER_PACKETS": float(state.hh_packets),
            "SKETCH_HEAVY_HITTER_BYTES": float(state.hh_bytes),
            "SKETCH_HH_PACKET_SHARE": (
                state.hh_packets / state.total_packets if state.total_packets else 0.0
            ),
            "SKETCH_UNIQUE_SRC_EST": unique_src,
            "SKETCH_UNIQUE_DST_PORT_EST": unique_port,
            "SKETCH_FLOWS_PER_SRC_EST": (
                observations / unique_src if unique_src else 0.0
            ),
            "SKETCH_PORTS_PER_SRC_EST": (
                unique_port / unique_src if unique_src else 0.0
            ),
            "SKETCH_SEEN_HOST_RATIO": (
                state.seen_hits / observations if observations else 0.0
            ),
        }

    def switch_fields(self, dpid: int) -> Dict[str, float]:
        """The current window's features without closing the window."""
        return self._fields(self._switch(dpid))

    def roll(self, dpid: int) -> Dict[str, float]:
        """Close the switch's window: emit its features and start fresh.

        The seen-host Bloom filter persists across windows; everything
        else (counts, cardinalities, heavy hitters) is window-scoped.
        """
        state = self._switch(dpid)
        fields = self._fields(state)
        state._fresh_window(self.params, self.seed + 1000 * dpid)
        return fields

    def switches(self) -> List[int]:
        return sorted(self._switches)

    def observations(self, dpid: int) -> int:
        """Observations in the switch's current window (0 if unseen)."""
        state = self._switches.get(dpid)
        return state.observations if state is not None else 0

    # -- distribution --------------------------------------------------

    def merge(self, other: "SketchFeatureState") -> "SketchFeatureState":
        """Fold a shard's state into self.

        CMS counters add, HLL registers max, Blooms OR — exactly the
        union stream.  Heavy-hitter maxima take the max across shards,
        a lower bound when one flow's traffic was split between shards.
        """
        if (self.params, self.seed) != (other.params, other.seed):
            raise SketchError("cannot merge sketch states with differing params/seed")
        for dpid, theirs in other._switches.items():
            mine = self._switch(dpid)
            mine.cms_packets.merge(theirs.cms_packets)
            mine.cms_bytes.merge(theirs.cms_bytes)
            mine.hll_src.merge(theirs.hll_src)
            mine.hll_dst_port.merge(theirs.hll_dst_port)
            mine.bloom_hosts.merge(theirs.bloom_hosts)
            mine.hh_packets = max(mine.hh_packets, theirs.hh_packets)
            mine.hh_bytes = max(mine.hh_bytes, theirs.hh_bytes)
            mine.observations += theirs.observations
            mine.seen_hits += theirs.seen_hits
            mine.total_packets += theirs.total_packets
            mine.total_bytes += theirs.total_bytes
        return self

    def to_bytes(self) -> bytes:
        """Deterministic serialisation (switches in dpid order)."""
        parts = [
            struct.pack(
                "<4sqddIQdI",
                _STATE_MAGIC,
                self.seed,
                self.params.cms_epsilon,
                self.params.cms_delta,
                self.params.hll_p,
                self.params.bloom_capacity,
                self.params.bloom_fp,
                len(self._switches),
            )
        ]
        for dpid in sorted(self._switches):
            state = self._switches[dpid]
            blobs = [
                state.cms_packets.to_bytes(),
                state.cms_bytes.to_bytes(),
                state.hll_src.to_bytes(),
                state.hll_dst_port.to_bytes(),
                state.bloom_hosts.to_bytes(),
            ]
            parts.append(
                struct.pack(
                    "<qqqQQQQ",
                    dpid,
                    state.hh_packets,
                    state.hh_bytes,
                    state.observations,
                    state.seen_hits,
                    state.total_packets,
                    state.total_bytes,
                )
            )
            for blob in blobs:
                parts.append(struct.pack("<I", len(blob)))
                parts.append(blob)
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, data: bytes) -> "SketchFeatureState":
        header_fmt = "<4sqddIQdI"
        header_size = struct.calcsize(header_fmt)
        magic, seed, eps, delta, hll_p, bloom_cap, bloom_fp, n_switches = struct.unpack(
            header_fmt, data[:header_size]
        )
        if magic != _STATE_MAGIC:
            raise SketchError("not a sketch-state serialisation")
        params = SketchParams(
            cms_epsilon=eps,
            cms_delta=delta,
            hll_p=hll_p,
            bloom_capacity=bloom_cap,
            bloom_fp=bloom_fp,
        )
        restored = cls(params=params, seed=seed)
        offset = header_size
        switch_fmt = "<qqqQQQQ"
        switch_size = struct.calcsize(switch_fmt)
        for _ in range(n_switches):
            (dpid, hh_p, hh_b, obs, seen, tot_p, tot_b) = struct.unpack(
                switch_fmt, data[offset : offset + switch_size]
            )
            offset += switch_size
            blobs = []
            for _ in range(5):
                (length,) = struct.unpack("<I", data[offset : offset + 4])
                offset += 4
                blobs.append(data[offset : offset + length])
                offset += length
            state = restored._switch(dpid)
            state.cms_packets = CountMinSketch.from_bytes(blobs[0])
            state.cms_bytes = CountMinSketch.from_bytes(blobs[1])
            state.hll_src = HyperLogLog.from_bytes(blobs[2])
            state.hll_dst_port = HyperLogLog.from_bytes(blobs[3])
            state.bloom_hosts = BloomFilter.from_bytes(blobs[4])
            state.hh_packets = hh_p
            state.hh_bytes = hh_b
            state.observations = obs
            state.seen_hits = seen
            state.total_packets = tot_p
            state.total_bytes = tot_b
        return restored

    def __reduce__(self):
        return (SketchFeatureState.from_bytes, (self.to_bytes(),))

    # -- introspection -------------------------------------------------

    def nbytes(self) -> int:
        """Resident sketch bytes across all switches."""
        total = 0
        for state in self._switches.values():
            total += state.cms_packets.nbytes() + state.cms_bytes.nbytes()
            total += state.hll_src.nbytes() + state.hll_dst_port.nbytes()
            total += state.bloom_hosts.nbytes()
        return total

    def fill_stats(self) -> Dict[str, float]:
        """Aggregate fill/error stats for northbound and telemetry."""
        switches = list(self._switches.values())
        if not switches:
            return {
                "switches": 0,
                "observations": 0,
                "nbytes": 0,
                "cms_fill_ratio": 0.0,
                "cms_error_bound": 0.0,
                "hll_fill_ratio": 0.0,
                "hll_relative_error": HyperLogLog(self.params.hll_p).relative_error(),
                "bloom_fill_ratio": 0.0,
                "bloom_fp_bound": 0.0,
            }
        n = len(switches)
        return {
            "switches": n,
            "observations": sum(s.observations for s in switches),
            "nbytes": self.nbytes(),
            "cms_fill_ratio": sum(s.cms_packets.fill_ratio() for s in switches) / n,
            "cms_error_bound": max(s.cms_packets.error_bound() for s in switches),
            "hll_fill_ratio": sum(s.hll_src.fill_ratio() for s in switches) / n,
            "hll_relative_error": switches[0].hll_src.relative_error(),
            "bloom_fill_ratio": sum(s.bloom_hosts.fill_ratio() for s in switches) / n,
            "bloom_fp_bound": max(s.bloom_hosts.fp_bound() for s in switches),
        }


class _SwitchExact:
    """Exact mirror of one switch's window: linear in distinct flows."""

    __slots__ = ("flows", "srcs", "dst_ports", "seen_hosts", "observations", "seen_hits")

    def __init__(self):
        self.seen_hosts: set = set()
        self._fresh_window()

    def _fresh_window(self) -> None:
        self.flows: Dict[Any, List[int]] = {}
        self.srcs: set = set()
        self.dst_ports: set = set()
        self.observations = 0
        self.seen_hits = 0


class ExactWindowState:
    """Exact-state reference implementing the sketch ``observe``/``roll`` API.

    Emits the same ``SKETCH_*`` field names with exact values.  Memory is
    linear in distinct flows per window (plus the persistent seen-host
    set) — the baseline :mod:`benchmarks.bench_sketch` extrapolates to
    show the sketch path's sublinearity.
    """

    def __init__(self, params: Optional[SketchParams] = None, seed: int = 0):
        self.params = params or SketchParams()
        self.seed = int(seed)
        self._switches: Dict[int, _SwitchExact] = {}

    def _switch(self, dpid: int) -> _SwitchExact:
        state = self._switches.get(dpid)
        if state is None:
            state = _SwitchExact()
            self._switches[dpid] = state
        return state

    def observe(
        self,
        dpid: int,
        flow_key: Any,
        src: Any,
        dst_port: Any,
        packets: int = 1,
        bytes_: int = 0,
    ) -> None:
        state = self._switch(dpid)
        packets = max(0, int(packets))
        bytes_ = max(0, int(bytes_))
        counters = state.flows.get(flow_key)
        if counters is None:
            state.flows[flow_key] = [packets, bytes_]
        else:
            counters[0] += packets
            counters[1] += bytes_
        state.srcs.add(src)
        state.dst_ports.add(dst_port)
        if src in state.seen_hosts:
            state.seen_hits += 1
        else:
            state.seen_hosts.add(src)
        state.observations += 1

    @staticmethod
    def _fields(state: _SwitchExact) -> Dict[str, float]:
        observations = state.observations
        total_packets = sum(c[0] for c in state.flows.values())
        total_bytes = sum(c[1] for c in state.flows.values())
        hh_packets = max((c[0] for c in state.flows.values()), default=0)
        hh_bytes = max((c[1] for c in state.flows.values()), default=0)
        unique_src = float(len(state.srcs))
        unique_port = float(len(state.dst_ports))
        return {
            "SKETCH_OBSERVATIONS": float(observations),
            "SKETCH_TOTAL_PACKETS": float(total_packets),
            "SKETCH_TOTAL_BYTES": float(total_bytes),
            "SKETCH_HEAVY_HITTER_PACKETS": float(hh_packets),
            "SKETCH_HEAVY_HITTER_BYTES": float(hh_bytes),
            "SKETCH_HH_PACKET_SHARE": (
                hh_packets / total_packets if total_packets else 0.0
            ),
            "SKETCH_UNIQUE_SRC_EST": unique_src,
            "SKETCH_UNIQUE_DST_PORT_EST": unique_port,
            "SKETCH_FLOWS_PER_SRC_EST": (
                observations / unique_src if unique_src else 0.0
            ),
            "SKETCH_PORTS_PER_SRC_EST": (
                unique_port / unique_src if unique_src else 0.0
            ),
            "SKETCH_SEEN_HOST_RATIO": (
                state.seen_hits / observations if observations else 0.0
            ),
        }

    def switch_fields(self, dpid: int) -> Dict[str, float]:
        return self._fields(self._switch(dpid))

    def roll(self, dpid: int) -> Dict[str, float]:
        state = self._switch(dpid)
        fields = self._fields(state)
        state._fresh_window()
        return fields

    def switches(self) -> List[int]:
        return sorted(self._switches)

    def nbytes(self) -> int:
        """Approximate resident bytes of the exact per-flow state."""
        import sys

        total = 0
        for state in self._switches.values():
            total += sys.getsizeof(state.flows)
            total += sum(
                sys.getsizeof(k) + sys.getsizeof(v) for k, v in state.flows.items()
            )
            total += sys.getsizeof(state.srcs) + sys.getsizeof(state.dst_ports)
            total += sys.getsizeof(state.seen_hosts)
        return total
