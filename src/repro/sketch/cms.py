"""Count-Min Sketch: approximate per-key counts in fixed memory.

The classic Cormode–Muthukrishnan structure: ``depth`` rows of ``width``
counters; each key increments one counter per row (chosen by double
hashing) and is estimated as the *minimum* over its counters.  Estimates
never under-count, and over-count by at most ``ε·N`` (N = total added
count) with probability ``1−δ`` when ``width = ⌈e/ε⌉`` and
``depth = ⌈ln(1/δ)⌉``.

Memory is ``width·depth`` 8-byte counters — independent of the number of
distinct keys, which is what lets the feature layer track heavy hitters
over a million flows in a few hundred kilobytes.
"""

from __future__ import annotations

import math
import struct
import sys
from array import array
from typing import Any

from repro.errors import ReproError
from repro.sketch.hashing import hash_pair

_MAGIC = b"CMS1"


class SketchError(ReproError):
    """Invalid sketch parameters or an incompatible merge/deserialise."""


class CountMinSketch:
    """Seeded, mergeable Count-Min Sketch with 64-bit counters."""

    __slots__ = ("epsilon", "delta", "seed", "width", "depth", "total", "_counters")

    def __init__(self, epsilon: float = 0.001, delta: float = 0.01, seed: int = 0):
        if not 0 < epsilon < 1 or not 0 < delta < 1:
            raise SketchError(f"CMS needs 0 < epsilon, delta < 1; got {epsilon}, {delta}")
        self.epsilon = float(epsilon)
        self.delta = float(delta)
        self.seed = int(seed)
        self.width = math.ceil(math.e / epsilon)
        self.depth = math.ceil(math.log(1.0 / delta))
        #: Total count added across all keys (the N of the ε·N bound).
        self.total = 0
        self._counters = array("q", bytes(8 * self.width * self.depth))

    def add(self, key: Any, count: int = 1) -> int:
        """Add ``count`` to ``key``; returns the key's new estimate.

        Returning the post-add estimate makes running heavy-hitter
        tracking a single pass: ``hh = max(hh, cms.add(k, c))``.
        """
        if count < 0:
            raise SketchError("CMS counts must be non-negative")
        h1, h2 = hash_pair(key, self.seed)
        counters, width = self._counters, self.width
        estimate = sys.maxsize
        base = 0
        for i in range(self.depth):
            slot = base + (h1 + i * h2) % width
            value = counters[slot] + count
            counters[slot] = value
            if value < estimate:
                estimate = value
            base += width
        self.total += count
        return estimate

    def estimate(self, key: Any) -> int:
        """Point query: an upper bound on the true count of ``key``."""
        h1, h2 = hash_pair(key, self.seed)
        counters, width = self._counters, self.width
        estimate = sys.maxsize
        base = 0
        for i in range(self.depth):
            value = counters[base + (h1 + i * h2) % width]
            if value < estimate:
                estimate = value
            base += width
        return estimate if estimate != sys.maxsize else 0

    def error_bound(self) -> float:
        """Additive error ceiling ε·N at the current total."""
        return self.epsilon * self.total

    def fill_ratio(self) -> float:
        """Fraction of non-zero counters (collision pressure indicator)."""
        nonzero = sum(1 for c in self._counters if c)
        return nonzero / len(self._counters)

    def merge(self, other: "CountMinSketch") -> "CountMinSketch":
        """Fold ``other`` into self (counter-wise add); same-parameter only."""
        if not self.compatible(other):
            raise SketchError(
                "cannot merge CMS with differing (width, depth, seed): "
                f"{(self.width, self.depth, self.seed)} vs "
                f"{(other.width, other.depth, other.seed)}"
            )
        for i, value in enumerate(other._counters):
            self._counters[i] += value
        self.total += other.total
        return self

    def compatible(self, other: "CountMinSketch") -> bool:
        return (
            self.width == other.width
            and self.depth == other.depth
            and self.seed == other.seed
        )

    def to_bytes(self) -> bytes:
        """Deterministic little-endian serialisation."""
        header = struct.pack(
            "<4sddqIIq",
            _MAGIC,
            self.epsilon,
            self.delta,
            self.seed,
            self.width,
            self.depth,
            self.total,
        )
        counters = self._counters
        if sys.byteorder == "big":  # pragma: no cover - LE everywhere we run
            counters = array("q", counters)
            counters.byteswap()
        return header + counters.tobytes()

    @classmethod
    def from_bytes(cls, data: bytes) -> "CountMinSketch":
        header_size = struct.calcsize("<4sddqIIq")
        magic, epsilon, delta, seed, width, depth, total = struct.unpack(
            "<4sddqIIq", data[:header_size]
        )
        if magic != _MAGIC:
            raise SketchError("not a CMS serialisation")
        sketch = cls(epsilon=epsilon, delta=delta, seed=seed)
        if (sketch.width, sketch.depth) != (width, depth):
            raise SketchError("CMS dimensions disagree with parameters")
        counters = array("q")
        counters.frombytes(data[header_size:])
        if sys.byteorder == "big":  # pragma: no cover
            counters.byteswap()
        if len(counters) != width * depth:
            raise SketchError("truncated CMS serialisation")
        sketch._counters = counters
        sketch.total = total
        return sketch

    def __getstate__(self):
        return self.to_bytes()

    def __setstate__(self, state):
        restored = CountMinSketch.from_bytes(state)
        for slot in self.__slots__:
            setattr(self, slot, getattr(restored, slot))

    def __reduce__(self):
        return (CountMinSketch.from_bytes, (self.to_bytes(),))

    def nbytes(self) -> int:
        """Resident counter bytes (the sublinear-memory claim)."""
        return len(self._counters) * self._counters.itemsize

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CountMinSketch(epsilon={self.epsilon}, delta={self.delta}, "
            f"seed={self.seed}, total={self.total})"
        )
