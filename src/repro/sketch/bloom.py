"""Bloom filter: set membership with no false negatives.

Sized from ``(capacity, fp_rate)`` the standard way — ``m = ⌈−n·ln(f) /
(ln 2)²⌉`` bits with ``k = round((m/n)·ln 2)`` probes — so the measured
false-positive rate at ``capacity`` inserted items stays near the
analytic bound ``(1 − e^{−kn/m})^k``.  The feature layer uses it as the
"have we ever seen this host" memory behind the previously-seen-host
ratio: a spoofed-source flood shows up as a crash in that ratio because
the spoofed addresses were never inserted.

Merging is bit-wise OR (same-parameter filters only), equal to having
ingested the union stream.
"""

from __future__ import annotations

import math
import struct
from typing import Any

from repro.sketch.cms import SketchError
from repro.sketch.hashing import hash_pair

_MAGIC = b"BLM1"


class BloomFilter:
    """Seeded, mergeable Bloom filter over a bytearray bit vector."""

    __slots__ = ("capacity", "fp_rate", "seed", "n_bits", "n_hashes", "items", "_bits")

    def __init__(self, capacity: int = 100_000, fp_rate: float = 0.01, seed: int = 0):
        if capacity < 1:
            raise SketchError(f"Bloom capacity must be >= 1; got {capacity}")
        if not 0 < fp_rate < 1:
            raise SketchError(f"Bloom fp_rate must be in (0, 1); got {fp_rate}")
        self.capacity = int(capacity)
        self.fp_rate = float(fp_rate)
        self.seed = int(seed)
        n_bits = math.ceil(-capacity * math.log(fp_rate) / (math.log(2) ** 2))
        self.n_bits = ((n_bits + 7) // 8) * 8  # round up to whole bytes
        self.n_hashes = max(1, round((self.n_bits / capacity) * math.log(2)))
        #: Number of (not necessarily distinct) items added.
        self.items = 0
        self._bits = bytearray(self.n_bits // 8)

    def add(self, key: Any) -> bool:
        """Insert ``key``; returns True when it was (probably) already present.

        The pre-insert membership answer makes the seen-host ratio a
        single pass: ``hits += bloom.add(src)``.
        """
        h1, h2 = hash_pair(key, self.seed)
        bits, n_bits = self._bits, self.n_bits
        present = True
        for i in range(self.n_hashes):
            bit = (h1 + i * h2) % n_bits
            byte, mask = bit >> 3, 1 << (bit & 7)
            if not bits[byte] & mask:
                present = False
                bits[byte] |= mask
        self.items += 1
        return present

    def __contains__(self, key: Any) -> bool:
        h1, h2 = hash_pair(key, self.seed)
        bits, n_bits = self._bits, self.n_bits
        for i in range(self.n_hashes):
            bit = (h1 + i * h2) % n_bits
            if not bits[bit >> 3] & (1 << (bit & 7)):
                return False
        return True

    def fill_ratio(self) -> float:
        """Fraction of set bits."""
        set_bits = sum(bin(byte).count("1") for byte in self._bits)
        return set_bits / self.n_bits

    def fp_bound(self) -> float:
        """Analytic false-positive probability at the current load."""
        k, n, m = self.n_hashes, self.items, self.n_bits
        return (1.0 - math.exp(-k * n / m)) ** k

    def merge(self, other: "BloomFilter") -> "BloomFilter":
        if not self.compatible(other):
            raise SketchError(
                "cannot merge Bloom filters with differing (bits, hashes, seed): "
                f"{(self.n_bits, self.n_hashes, self.seed)} vs "
                f"{(other.n_bits, other.n_hashes, other.seed)}"
            )
        bits, theirs = self._bits, other._bits
        for i in range(len(bits)):
            bits[i] |= theirs[i]
        self.items += other.items
        return self

    def compatible(self, other: "BloomFilter") -> bool:
        return (
            self.n_bits == other.n_bits
            and self.n_hashes == other.n_hashes
            and self.seed == other.seed
        )

    def to_bytes(self) -> bytes:
        header = struct.pack(
            "<4sQdqQ", _MAGIC, self.capacity, self.fp_rate, self.seed, self.items
        )
        return header + bytes(self._bits)

    @classmethod
    def from_bytes(cls, data: bytes) -> "BloomFilter":
        header_size = struct.calcsize("<4sQdqQ")
        magic, capacity, fp_rate, seed, items = struct.unpack(
            "<4sQdqQ", data[:header_size]
        )
        if magic != _MAGIC:
            raise SketchError("not a Bloom serialisation")
        sketch = cls(capacity=capacity, fp_rate=fp_rate, seed=seed)
        bits = data[header_size:]
        if len(bits) != sketch.n_bits // 8:
            raise SketchError("truncated Bloom serialisation")
        sketch._bits = bytearray(bits)
        sketch.items = items
        return sketch

    def __reduce__(self):
        return (BloomFilter.from_bytes, (self.to_bytes(),))

    def nbytes(self) -> int:
        return len(self._bits)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"BloomFilter(capacity={self.capacity}, fp_rate={self.fp_rate}, "
            f"seed={self.seed}, items={self.items})"
        )
