"""HyperLogLog: approximate distinct counts in ``2^p`` bytes.

Flajolet et al.'s estimator: hash each key to 64 bits, use the top ``p``
bits to pick one of ``m = 2^p`` registers and store the maximum "rank"
(position of the first 1-bit) seen in the remaining bits.  The harmonic
mean of ``2^register`` estimates the cardinality with relative standard
error ``≈ 1.04/√m``; the property suite holds streams to ``3/√m`` (three
sigma).  Small cardinalities fall back to linear counting over the empty
registers, as in the HyperLogLog++ practice.

Merging is register-wise ``max``, which is exactly what ingesting the
union stream would have produced — the distributed-shard story.
"""

from __future__ import annotations

import math
import struct
from typing import Any

from repro.sketch.cms import SketchError
from repro.sketch.hashing import hash64

_MAGIC = b"HLL1"


def _alpha(m: int) -> float:
    if m == 16:
        return 0.673
    if m == 32:
        return 0.697
    if m == 64:
        return 0.709
    return 0.7213 / (1.0 + 1.079 / m)


class HyperLogLog:
    """Seeded, mergeable HyperLogLog with byte registers."""

    __slots__ = ("p", "seed", "m", "_registers")

    def __init__(self, p: int = 12, seed: int = 0):
        if not 4 <= p <= 18:
            raise SketchError(f"HLL precision must be in [4, 18]; got {p}")
        self.p = int(p)
        self.seed = int(seed)
        self.m = 1 << p
        self._registers = bytearray(self.m)

    def add(self, key: Any) -> None:
        h = hash64(key, self.seed)
        index = h >> (64 - self.p)
        # Rank = leading zeros of the remaining (64-p)-bit suffix, plus one.
        suffix_bits = 64 - self.p
        suffix = h & ((1 << suffix_bits) - 1)
        rank = suffix_bits - suffix.bit_length() + 1
        if rank > self._registers[index]:
            self._registers[index] = rank

    def cardinality(self) -> float:
        m = self.m
        inverse_sum = 0.0
        zeros = 0
        for register in self._registers:
            inverse_sum += 2.0 ** -register
            if register == 0:
                zeros += 1
        estimate = _alpha(m) * m * m / inverse_sum
        if estimate <= 2.5 * m and zeros:
            return m * math.log(m / zeros)  # linear counting
        return estimate

    def relative_error(self) -> float:
        """The one-sigma relative standard error, ``1.04/√m``."""
        return 1.04 / math.sqrt(self.m)

    def fill_ratio(self) -> float:
        """Fraction of non-zero registers."""
        nonzero = sum(1 for r in self._registers if r)
        return nonzero / self.m

    def merge(self, other: "HyperLogLog") -> "HyperLogLog":
        if not self.compatible(other):
            raise SketchError(
                f"cannot merge HLL with differing (p, seed): "
                f"{(self.p, self.seed)} vs {(other.p, other.seed)}"
            )
        registers, theirs = self._registers, other._registers
        for i in range(self.m):
            if theirs[i] > registers[i]:
                registers[i] = theirs[i]
        return self

    def compatible(self, other: "HyperLogLog") -> bool:
        return self.p == other.p and self.seed == other.seed

    def to_bytes(self) -> bytes:
        header = struct.pack("<4sBq", _MAGIC, self.p, self.seed)
        return header + bytes(self._registers)

    @classmethod
    def from_bytes(cls, data: bytes) -> "HyperLogLog":
        header_size = struct.calcsize("<4sBq")
        magic, p, seed = struct.unpack("<4sBq", data[:header_size])
        if magic != _MAGIC:
            raise SketchError("not an HLL serialisation")
        sketch = cls(p=p, seed=seed)
        registers = data[header_size:]
        if len(registers) != sketch.m:
            raise SketchError("truncated HLL serialisation")
        sketch._registers = bytearray(registers)
        return sketch

    def __reduce__(self):
        return (HyperLogLog.from_bytes, (self.to_bytes(),))

    def nbytes(self) -> int:
        return self.m

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"HyperLogLog(p={self.p}, seed={self.seed})"
