"""Stable 64-bit hashing for the sketch structures.

Python's builtin ``hash`` is salted per process (``PYTHONHASHSEED``), so
sketches built on it would not be reproducible across runs — and the
determinism contract (same seed + same stream → byte-identical sketch)
is the whole point.  This module provides a seeded, pure-python 64-bit
mix (the splitmix64 finaliser) that is identical on every platform and
process, plus the double-hashing scheme ``h_i = h1 + i·h2`` used by the
CMS rows and Bloom probes so each key is mixed only twice regardless of
depth.
"""

from __future__ import annotations

from typing import Any

MASK64 = (1 << 64) - 1

#: FNV-1a 64-bit parameters, used to fold variable-length keys to an int.
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


def mix64(x: int) -> int:
    """The splitmix64 finaliser: a full-avalanche 64-bit permutation."""
    x &= MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & MASK64
    return x ^ (x >> 31)


def _fnv1a(data: bytes) -> int:
    h = _FNV_OFFSET
    for byte in data:
        h = ((h ^ byte) * _FNV_PRIME) & MASK64
    return h


def key_to_int(key: Any) -> int:
    """Canonicalise a sketch key to a stable 64-bit integer.

    Accepts ints (used directly — the fast path for the million-flow
    workloads), strings/bytes (FNV-1a folded) and tuples (members folded
    recursively).  Floats are rejected: binary representation issues
    would make equality-of-keys fragile.
    """
    if isinstance(key, bool):  # bool is an int subclass; keep it distinct
        return mix64(0x9E3779B97F4A7C15 + int(key))
    if isinstance(key, int):
        return key & MASK64
    if isinstance(key, str):
        return _fnv1a(key.encode("utf-8"))
    if isinstance(key, bytes):
        return _fnv1a(key)
    if isinstance(key, tuple):
        h = _FNV_OFFSET
        for part in key:
            h = ((h ^ key_to_int(part)) * _FNV_PRIME) & MASK64
            h = mix64(h)
        return h
    raise TypeError(f"unhashable sketch key type {type(key).__name__!r}")


def hash64(key: Any, seed: int = 0) -> int:
    """Seeded stable 64-bit hash of ``key``."""
    return mix64(key_to_int(key) ^ mix64(seed))


def hash_pair(key: Any, seed: int) -> "tuple[int, int]":
    """Two independent 64-bit hashes for double hashing.

    ``h2`` is forced odd so ``(h1 + i*h2) % width`` cycles through
    distinct indices even for power-of-two widths.
    """
    k = key_to_int(key)
    h1 = mix64(k ^ mix64(seed))
    h2 = mix64(k ^ mix64(seed + 0x632BE59BD9B4E019)) | 1
    return h1, h2
