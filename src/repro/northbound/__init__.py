"""The northbound serving tier: HTTP/JSON + Prometheus over a deployment.

The paper's Athena exposes its northbound API in-process; this package
puts that surface on the wire so external clients can poll features,
alerts, model status, flow tables, and health, and Prometheus can scrape
``/metrics`` — without perturbing the detection loop (docs/API.md).

    from repro.northbound import NorthboundAPI, make_api_server
    app = NorthboundAPI(deployment)
    server = make_api_server(app, port=8080)
    server.serve_forever()
"""

from repro.northbound.api import NorthboundAPI, http_status_for
from repro.northbound.cache import VersionedCache, make_etag
from repro.northbound.client import LocalClient, Response
from repro.northbound.demo import DemoStack, build_demo_stack
from repro.northbound.server import make_api_server

__all__ = [
    "NorthboundAPI",
    "http_status_for",
    "VersionedCache",
    "make_etag",
    "LocalClient",
    "Response",
    "DemoStack",
    "build_demo_stack",
    "make_api_server",
]
