"""Threaded stdlib HTTP server for the northbound API.

``wsgiref`` plus :class:`~socketserver.ThreadingMixIn` is all the serving
tier needs: requests are short (the cache makes most of them one dict
lookup) and the app is thread-safe for reads.  No third-party dependency,
matching the rest of the stack.
"""

from __future__ import annotations

import threading
from socketserver import ThreadingMixIn
from wsgiref.simple_server import WSGIRequestHandler, WSGIServer, make_server


class _QuietHandler(WSGIRequestHandler):
    """Suppress per-request stderr logging (docs go to telemetry instead)."""

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass


class ThreadedWSGIServer(ThreadingMixIn, WSGIServer):
    """One thread per request; daemon threads so shutdown never hangs.

    stdlib ``ThreadingMixIn`` only joins *non*-daemon handler threads on
    ``server_close()``, so a daemon-threaded server that closes right
    after ``handle_request()`` (the CLI's ``--once`` mode) can exit while
    the response is still being written.  We track our handler threads
    ourselves and give each a bounded join: in-flight responses complete,
    but a wedged request can never hang shutdown for more than
    ``close_join_timeout`` seconds.
    """

    daemon_threads = True
    close_join_timeout = 5.0

    def process_request(self, request, client_address) -> None:
        thread = threading.Thread(
            target=self.process_request_thread,
            args=(request, client_address),
            daemon=True,
        )
        handler_threads = vars(self).setdefault("_handler_threads", [])
        handler_threads[:] = [t for t in handler_threads if t.is_alive()]
        handler_threads.append(thread)
        thread.start()

    def server_close(self) -> None:
        super(ThreadingMixIn, self).server_close()
        for thread in vars(self).get("_handler_threads", []):
            thread.join(timeout=self.close_join_timeout)


def make_api_server(app, host: str = "127.0.0.1", port: int = 0):
    """Bind ``app`` on ``host:port`` (port 0 picks a free port).

    Returns the server; call ``serve_forever()`` to serve, or
    ``handle_request()`` for exactly one request.  The bound port is
    ``server.server_address[1]``.
    """
    return make_server(
        host,
        port,
        app,
        server_class=ThreadedWSGIServer,
        handler_class=_QuietHandler,
    )
