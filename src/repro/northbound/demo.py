"""A self-contained detection deployment for serving and load testing.

``repro.cli serve`` and ``benchmarks/bench_nb_api.py`` both need a live
deployment with data behind every endpoint: stored features, a trained
model, an online validator streaming verdicts, periodic batch rounds, and
at least one enforced reaction.  :func:`build_demo_stack` assembles the
same DDoS stack as the chaos scenarios (linear topology, two instances,
three shards, K-Means trained offline) and returns it ready to run; the
caller drives the sim clock (``stack.run(until=...)``) and serves the
deployment through :class:`~repro.northbound.api.NorthboundAPI`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple


@dataclass
class DemoStack:
    """One runnable demo deployment plus its moving parts."""

    topo: Any
    athena: Any
    schedule: Any
    model: Any
    validator_id: int
    verdicts: List[Tuple[Optional[str], bool]] = field(default_factory=list)

    @property
    def sim(self):
        return self.topo.network.sim

    def run(self, until: float) -> None:
        """Advance the sim clock (traffic, polling, detection rounds)."""
        self.sim.run(until=until)

    def enforce_block(self, ip: Optional[str] = None) -> None:
        """Block one host so ``/api/alerts`` has a mitigation on record."""
        from repro.core import BlockReaction

        target = ip or self.topo.network.hosts["h2"].ip
        self.athena.northbound.reactor(None, BlockReaction(target_ips=[target]))


def build_demo_stack(
    scale: float = 0.0005,
    horizon: float = 8.0,
    seed: int = 1,
    attack_rate_pps: float = 150.0,
) -> DemoStack:
    """Build the DDoS demo deployment (telemetry should be configured first).

    Mirrors the chaos ``ddos`` scenario: flood + benign traffic scheduled
    through ``horizon`` seconds, K-Means trained on the scaled dataset, an
    online validator on live flow features, and a batch round every 2 sim
    seconds.  Nothing has run yet — call ``stack.run(until=...)``.
    """
    from repro.controller import ControllerCluster, ReactiveForwarding
    from repro.core import AthenaDeployment, GenerateQuery
    from repro.core.algorithm import GenerateAlgorithm
    from repro.core.preprocessor import GeneratePreprocessor
    from repro.dataplane.topologies import linear_topology
    from repro.workloads.ddos import DDoSDatasetGenerator, DDoSDatasetSpec
    from repro.workloads.flows import FlowSpec, TrafficSchedule

    topo = linear_topology(n_switches=3, hosts_per_switch=2)
    cluster = ControllerCluster(topo.network, n_instances=2)
    cluster.adopt_all()
    cluster.start(poll=False)
    forwarding = ReactiveForwarding()
    forwarding.activate(cluster)
    athena = AthenaDeployment(cluster, athena_poll_interval=1.0)
    athena.start()
    schedule = TrafficSchedule(topo.network)
    schedule.prime_arp()

    documents = DDoSDatasetGenerator(DDoSDatasetSpec(scale=scale)).generate()
    preprocessor = GeneratePreprocessor(
        normalization="minmax",
        marking="label",
        features=[
            "FLOW_PACKET_COUNT",
            "FLOW_BYTE_PER_PACKET",
            "FLOW_PACKET_PER_DURATION",
            "PAIR_FLOW",
        ],
    )
    model = athena.detector_manager.generate_detection_model(
        GenerateQuery(),
        preprocessor,
        GenerateAlgorithm("kmeans", k=6, max_iterations=15, runs=2, seed=seed),
        documents=documents,
    )
    live_query = GenerateQuery("feature_scope == flow && FLOW_PACKET_COUNT > 0")
    verdicts: List[Tuple[Optional[str], bool]] = []
    validator_id = athena.northbound.add_online_validator(
        model.preprocessor,
        model,
        lambda feature, verdict: verdicts.append(
            (feature.indicators.get("ip_src"), verdict)
        ),
        query=live_query,
    )
    sim = topo.network.sim
    sim.every(
        2.0,
        lambda: athena.detector_manager.poll_round(
            live_query, model.preprocessor, model
        ),
    )
    schedule.add_flow(
        FlowSpec(src_host="h2", dst_host="h6", sport=50001, dport=80,
                 packet_size=64, rate_pps=attack_rate_pps, start=1.0,
                 duration=max(6.0, horizon - 2.0))
    )
    schedule.add_flow(
        FlowSpec(src_host="h1", dst_host="h5", rate_pps=10.0, start=1.0,
                 duration=max(4.0, horizon - 3.0), bidirectional=True)
    )
    return DemoStack(
        topo=topo,
        athena=athena,
        schedule=schedule,
        model=model,
        validator_id=validator_id,
        verdicts=verdicts,
    )
