"""Sim-clock-versioned response caching for the serving tier.

The deployment's state only changes when something observable happens —
a simulator event fires, a feature is published, a model is generated, a
reaction is enforced.  :class:`VersionedCache` folds those monotonic
counters into a *state version*; a response built at version *v* stays
valid (and is served straight from memory) until the version moves.  The
version also derives each response's ``ETag``, so clients polling with
``If-None-Match`` get a ``304 Not Modified`` for free while the
deployment is quiescent — the mechanism that lets thousands of polling
dashboards ride on one detection run (docs/API.md "Caching and ETags").

The cache is a bounded dict with FIFO eviction: entries from an older
version are dead weight the moment the version moves, so eviction order
barely matters and FIFO keeps the hot path to one dict lookup.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Optional, Tuple

#: One cached response: status line, headers, and the rendered body.
ResponseTriple = Tuple[str, List[Tuple[str, str]], bytes]


@dataclass
class CacheEntry:
    """A rendered response pinned to the state version that produced it."""

    version: Hashable
    etag: str
    status: str
    headers: List[Tuple[str, str]]
    body: bytes


def make_etag(key: Hashable, version: Hashable) -> str:
    """A strong ETag deterministic in (request key, state version)."""
    digest = hashlib.sha1(repr((key, version)).encode("utf-8")).hexdigest()
    return f'"{digest[:20]}"'


class VersionedCache:
    """Response cache invalidated by state-version movement, not by time."""

    def __init__(
        self,
        version_source: Callable[[], Hashable],
        max_entries: int = 256,
    ) -> None:
        self._version_source = version_source
        self.max_entries = max_entries
        self._entries: Dict[Hashable, CacheEntry] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def version(self) -> Hashable:
        """The deployment's current state version."""
        return self._version_source()

    def get(self, key: Hashable, version: Hashable) -> Optional[CacheEntry]:
        """The entry for ``key`` if it was built at ``version``."""
        entry = self._entries.get(key)
        if entry is not None and entry.version == version:
            self.hits += 1
            return entry
        self.misses += 1
        return None

    def put(
        self,
        key: Hashable,
        version: Hashable,
        status: str,
        headers: List[Tuple[str, str]],
        body: bytes,
    ) -> CacheEntry:
        """Store a freshly rendered response for ``key`` at ``version``."""
        if len(self._entries) >= self.max_entries and key not in self._entries:
            # FIFO: drop the oldest insertion (dicts preserve order).
            oldest = next(iter(self._entries))
            del self._entries[oldest]
            self.evictions += 1
        self._entries[key] = CacheEntry(
            version=version,
            etag=make_etag(key, version),
            status=status,
            headers=headers,
            body=body,
        )
        return self._entries[key]

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()
