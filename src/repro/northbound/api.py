"""The northbound serving tier: a dependency-free WSGI app over Athena.

The paper's operators program detection through the eight Table II
functions in-process; this module puts an HTTP face on that surface so
external clients — dashboards, scrapers, other controllers — can poll
features, alerts, model status, flow tables, and deployment health as
JSON, and Prometheus can scrape ``/metrics``.  Everything is stdlib: the
app is a plain WSGI callable, served by ``wsgiref`` threads
(:mod:`repro.northbound.server`) or driven in-process by
:class:`~repro.northbound.client.LocalClient`.

Heavy query traffic must not perturb detection, so every JSON route is
served through a :class:`~repro.northbound.cache.VersionedCache` keyed on
the deployment's *state version* (sim events processed + the manager
counters): repeated identical queries against a quiescent deployment cost
one dict lookup, and conditional requests collapse to ``304 Not
Modified``.  ``benchmarks/bench_nb_api.py`` enforces the <5% perturbation
budget.  Every route, parameter, and envelope is documented in
docs/API.md, which ``tests/test_docs_northbound.py`` keeps drift-checked
against :data:`NorthboundAPI.routes`.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple
from urllib.parse import parse_qs

from repro.core.query import Query
from repro.errors import (
    AthenaError,
    DatabaseError,
    QueryError,
    ReproError,
)
from repro.perf import sketch as _sketch
from repro.telemetry import get_telemetry, to_prometheus_text
from repro.northbound.cache import VersionedCache

#: Ordered (class, HTTP status) pairs — most specific first — mapping the
#: repro.errors hierarchy onto response statuses.  Anything not caught by
#: an earlier row degrades to its base class's row.
ERROR_STATUS = (
    (QueryError, 400),
    (DatabaseError, 503),
    (AthenaError, 400),
    (ReproError, 500),
)

_REASONS = {
    200: "OK",
    304: "Not Modified",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Default / maximum page sizes for every paginated route.
DEFAULT_PAGE_LIMIT = 100
MAX_PAGE_LIMIT = 1000

#: Longest sim-clock horizon one long-poll request may drive (seconds).
MAX_ALERT_WAIT = 60.0


class ApiParamError(AthenaError):
    """A request carried an unusable query parameter."""

    code = "athena.api_param"


def http_status_for(exc: ReproError) -> int:
    """The HTTP status an error maps to (docs/API.md "Error envelope")."""
    for cls, status in ERROR_STATUS:
        if isinstance(exc, cls):
            return status
    return 500


@dataclass(frozen=True)
class Route:
    """One served route: matching metadata plus its documentation row."""

    method: str
    pattern: str          # e.g. "/api/switches/{dpid}/flows"
    name: str             # telemetry label + docs anchor
    handler: Callable
    summary: str
    params: Tuple[str, ...] = ()   # recognised query parameters
    paginated: bool = False
    cached: bool = True
    #: Parameters whose presence forces a fresh render (e.g. long-poll).
    uncached_params: Tuple[str, ...] = ()

    def regex(self) -> "re.Pattern[str]":
        parts = []
        for piece in re.split(r"({[a-z_]+})", self.pattern):
            if piece.startswith("{") and piece.endswith("}"):
                parts.append(f"(?P<{piece[1:-1]}>[^/]+)")
            else:
                parts.append(re.escape(piece))
        return re.compile("^" + "".join(parts) + "$")


def _json_bytes(payload: Any) -> bytes:
    return json.dumps(
        payload, indent=2, sort_keys=True, default=str
    ).encode("utf-8")


def _int_param(
    query: Dict[str, str], name: str, default: int, minimum: int = 0
) -> int:
    raw = query.get(name)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ApiParamError(f"parameter {name!r} must be an integer, got {raw!r}")
    if value < minimum:
        raise ApiParamError(f"parameter {name!r} must be >= {minimum}, got {value}")
    return value


def paginate(
    items: List[Any], query: Dict[str, str]
) -> Tuple[List[Any], Dict[str, int]]:
    """Slice ``items`` by the standard ``offset``/``limit`` parameters."""
    offset = _int_param(query, "offset", 0)
    limit = _int_param(query, "limit", DEFAULT_PAGE_LIMIT)
    limit = min(limit, MAX_PAGE_LIMIT)
    window = items[offset:offset + limit]
    return window, {
        "offset": offset,
        "limit": limit,
        "total": len(items),
        "returned": len(window),
    }


class NorthboundAPI:
    """WSGI app exposing one Athena deployment (docs/API.md)."""

    def __init__(
        self,
        deployment,
        cache_entries: int = 256,
    ) -> None:
        self.deployment = deployment
        self.cache = VersionedCache(self._state_version, max_entries=cache_entries)
        registry = get_telemetry().registry
        self._metric_requests = registry.counter(
            "athena_nb_api_requests_total",
            "Northbound API requests served, by route.",
            labelnames=("route",),
        )
        self._metric_cache_hits = registry.counter(
            "athena_nb_api_cache_hits_total",
            "Responses served from the version-keyed cache.",
        )
        self._metric_cache_misses = registry.counter(
            "athena_nb_api_cache_misses_total",
            "Responses rendered because no current-version entry existed.",
        )
        self._metric_not_modified = registry.counter(
            "athena_nb_api_not_modified_total",
            "Conditional requests answered 304 via ETag match.",
        )
        self._metric_errors = registry.counter(
            "athena_nb_api_errors_total",
            "Error envelopes returned, by machine-readable code.",
            labelnames=("code",),
        )
        self._metric_seconds = registry.histogram(
            "athena_nb_api_request_seconds",
            "Wall seconds per northbound API request.",
        )
        self.routes: Tuple[Route, ...] = (
            Route("GET", "/", "index", self._h_index,
                  "API index: every route with its parameters."),
            Route("GET", "/api/status", "status", self._h_status,
                  "Deployment summary: instance/feature/model/reaction "
                  "counters and the current state version."),
            Route("GET", "/api/features", "features", self._h_features,
                  "Stored Athena features via RequestFeatures.",
                  params=("q", "scope", "switch", "sort", "limit", "offset"),
                  paginated=True),
            Route("GET", "/api/alerts", "alerts", self._h_alerts,
                  "Alerts: enforced reactions plus streaming-detector "
                  "alerts, most recent last; long-polls when `wait` is set.",
                  params=("limit", "offset", "wait", "since"), paginated=True,
                  uncached_params=("wait",)),
            Route("GET", "/api/models", "models", self._h_models,
                  "Detector status: model/validation counters, degradation "
                  "counters, online validators."),
            Route("GET", "/api/algorithms", "algorithms", self._h_algorithms,
                  "The ML algorithm registry with Table IV categories."),
            Route("GET", "/api/catalog", "catalog", self._h_catalog,
                  "The feature catalog (Table I).",
                  params=("category", "scope", "limit", "offset"),
                  paginated=True),
            Route("GET", "/api/switches", "switches", self._h_switches,
                  "Per-switch inventory: master instance, flow and port "
                  "counts.", params=("limit", "offset"), paginated=True),
            Route("GET", "/api/switches/{dpid}/flows", "switch_flows",
                  self._h_switch_flows,
                  "One switch's flow table: matches, priorities, counters.",
                  params=("limit", "offset"), paginated=True),
            Route("GET", "/api/health", "health", self._h_health,
                  "Liveness: shard status, pending writes, degraded rounds, "
                  "monitoring fidelity."),
            Route("GET", "/api/streaming/status", "streaming_status",
                  self._h_streaming_status,
                  "Streaming pipeline state: events folded by kind, "
                  "registered online detectors, alerts, refreshes."),
            Route("GET", "/metrics", "metrics", self._h_metrics,
                  "Prometheus text exposition of the telemetry registry.",
                  cached=False),
        )
        # Static paths resolve with one dict lookup; only parameterized
        # patterns pay a (precompiled) regex match.
        self._static_routes = {
            route.pattern: route for route in self.routes
            if "{" not in route.pattern
        }
        self._dynamic_routes = [
            (route.regex(), route) for route in self.routes
            if "{" in route.pattern
        ]
        self._route_counters = {
            route.name: self._metric_requests.labels(route=route.name)
            for route in self.routes
        }

    # -- state version -------------------------------------------------------

    def _state_version(self) -> Tuple[Any, ...]:
        """Monotonic fingerprint of everything the JSON routes can observe.

        The simulator's processed-event count covers all data-plane and
        control-plane movement; the manager counters cover NB-side calls
        (model generation, reactions, feature publication) that can happen
        outside a simulator event.
        """
        d = self.deployment
        sim = d.cluster.network.sim
        return (
            sim.processed,
            round(sim.now, 9),
            d.feature_manager.features_published,
            d.feature_manager.pending_writes,
            d.detector_manager.models_generated,
            d.detector_manager.validations_run,
            d.detector_manager.degraded_rounds,
            d.reaction_manager.reactions_enforced,
            # Streaming detector registrations happen outside sim events,
            # so the version must observe them directly.
            0 if d.streaming is None else d.streaming.detectors.detector_count,
            # The sketch flag can be toggled at runtime; /api/status reports
            # it, so a toggle must invalidate cached responses.
            _sketch.ENABLED,
        )

    # -- WSGI entry point ----------------------------------------------------

    def __call__(self, environ, start_response):
        with self._metric_seconds.time():
            status, headers, body = self._dispatch(environ)
        if environ.get("REQUEST_METHOD") == "HEAD":
            body = b""
        start_response(status, headers)
        return [body]

    def _dispatch(self, environ) -> Tuple[str, List[Tuple[str, str]], bytes]:
        method = environ.get("REQUEST_METHOD", "GET")
        path = environ.get("PATH_INFO", "/") or "/"
        raw_qs = environ.get("QUERY_STRING", "")
        if method not in ("GET", "HEAD"):
            return self._error_response(
                405, "http.method_not_allowed",
                f"{method} is not supported; the API is read-only",
            )
        route, params = self._match(path)
        if route is None:
            return self._error_response(
                404, "http.not_found", f"no route matches {path!r}",
            )
        self._route_counters[route.name].inc()
        query = {}
        if raw_qs:
            query = {
                key: values[-1] for key, values in parse_qs(raw_qs).items()
            }
        if not route.cached or any(
            name in query for name in route.uncached_params
        ):
            return self._render(route, params, query)
        version = self.cache.version()
        key = (route.name, tuple(sorted(params.items())),
               tuple(sorted(query.items())))
        entry = self.cache.get(key, version)
        if entry is None:
            self._metric_cache_misses.inc()
            status, headers, body = self._render(route, params, query)
            if not status.startswith("200"):
                return status, headers, body
            entry = self.cache.put(key, version, status, headers, body)
        else:
            self._metric_cache_hits.inc()
        etags = environ.get("HTTP_IF_NONE_MATCH", "")
        if entry.etag in [tag.strip() for tag in etags.split(",") if tag]:
            self._metric_not_modified.inc()
            return (
                "304 Not Modified",
                [("ETag", entry.etag), ("X-Athena-Version", entry.etag)],
                b"",
            )
        headers = list(entry.headers) + [
            ("ETag", entry.etag),
            ("Cache-Control", "max-age=0, must-revalidate"),
        ]
        return entry.status, headers, entry.body

    def _match(self, path: str) -> Tuple[Optional[Route], Dict[str, str]]:
        route = self._static_routes.get(path)
        if route is not None:
            return route, {}
        for pattern, candidate in self._dynamic_routes:
            found = pattern.match(path)
            if found is not None:
                return candidate, found.groupdict()
        return None, {}

    def _render(
        self, route: Route, params: Dict[str, str], query: Dict[str, str]
    ) -> Tuple[str, List[Tuple[str, str]], bytes]:
        try:
            payload, content_type = route.handler(params, query)
        except ReproError as exc:
            return self._error_envelope(exc)
        except Exception as exc:  # noqa: BLE001 — a read must never kill a worker
            return self._error_response(
                500, "http.internal", f"{type(exc).__name__}: {exc}",
                error_class=type(exc).__name__,
            )
        if content_type != "application/json":
            body = payload if isinstance(payload, bytes) else str(payload).encode()
            return self._ok(body, content_type)
        return self._ok(_json_bytes(payload), content_type)

    @staticmethod
    def _ok(body: bytes, content_type: str):
        headers = [
            ("Content-Type", content_type + "; charset=utf-8"),
            ("Content-Length", str(len(body))),
        ]
        return "200 OK", headers, body

    # -- error envelopes -----------------------------------------------------

    def _error_envelope(self, exc: ReproError):
        status = http_status_for(exc)
        return self._error_response(
            status, exc.code, str(exc), error_class=type(exc).__name__
        )

    def _error_response(
        self, status: int, code: str, message: str, error_class: str = ""
    ):
        self._metric_errors.labels(code=code).inc()
        body = _json_bytes(
            {
                "error": {
                    "code": code,
                    "message": message,
                    "status": status,
                    "error_class": error_class or None,
                }
            }
        )
        headers = [
            ("Content-Type", "application/json; charset=utf-8"),
            ("Content-Length", str(len(body))),
        ]
        return f"{status} {_REASONS.get(status, 'Error')}", headers, body

    # -- envelopes -----------------------------------------------------------

    def _envelope(
        self,
        data: Any,
        pagination: Optional[Dict[str, int]] = None,
    ) -> Dict[str, Any]:
        sim = self.deployment.cluster.network.sim
        payload: Dict[str, Any] = {
            "data": data,
            "sim_time": sim.now,
        }
        if pagination is not None:
            payload["pagination"] = pagination
        return payload

    # -- handlers ------------------------------------------------------------

    def _h_index(self, params, query):
        data = [
            {
                "path": route.pattern,
                "name": route.name,
                "summary": route.summary,
                "params": list(route.params),
                "paginated": route.paginated,
                "cached": route.cached,
            }
            for route in self.routes
        ]
        return self._envelope(data), "application/json"

    def _h_status(self, params, query):
        d = self.deployment
        data = dict(d.summary())
        data["sim_events_processed"] = d.cluster.network.sim.processed
        data["sketch"] = {"enabled": _sketch.ENABLED, **d.sketch_stats()}
        data["cache"] = {
            "entries": len(self.cache),
            "hits": self.cache.hits,
            "misses": self.cache.misses,
            "evictions": self.cache.evictions,
        }
        return self._envelope(data), "application/json"

    def _h_features(self, params, query):
        feature_query = Query(query.get("q") or None)
        scope = query.get("scope")
        if scope is not None:
            feature_query.where("feature_scope", "==", scope)
        switch = query.get("switch")
        if switch is not None:
            feature_query.where(
                "switch_id", "==", _int_param({"switch": switch}, "switch", 0)
            )
        sort = query.get("sort")
        if sort:
            feature_query.sort_by(sort.lstrip("-"), descending=sort.startswith("-"))
        documents = self.deployment.feature_manager.request_features(
            feature_query
        )
        window, pagination = paginate(documents, query)
        return self._envelope(window, pagination), "application/json"

    def _combined_alerts(self) -> List[Dict[str, Any]]:
        """Reaction history + streaming alerts, each tagged with its source.

        The combined *count* is what long-poll clients watch: it only ever
        grows, so ``since=<count already seen>`` is a stable baseline even
        though the two sub-streams are concatenated, not interleaved.
        """
        combined = [
            {"alert_type": "reaction", **entry}
            for entry in self.deployment.reaction_manager.history
        ]
        if self.deployment.streaming is not None:
            combined.extend(
                {"alert_type": "streaming", **alert}
                for alert in self.deployment.streaming.detectors.alerts
            )
        return combined

    def _h_alerts(self, params, query):
        wait = query.get("wait")
        if wait is not None:
            self._wait_for_alerts(wait, query.get("since"))
        indexed = [
            {"alert_id": i, **entry}
            for i, entry in enumerate(self._combined_alerts())
        ]
        window, pagination = paginate(indexed, query)
        return self._envelope(window, pagination), "application/json"

    def _wait_for_alerts(self, wait_raw: str, since_raw: Optional[str]) -> None:
        """Long-poll: drive the sim clock up to ``wait`` sim seconds,
        returning as soon as the combined alert count exceeds ``since``
        (default: the count at request time).  Never cached.

        When the simulator is already running (an in-process client called
        from inside a sim event), driving it again would be reentrant —
        the request degrades to an immediate snapshot instead of failing.
        """
        from repro.errors import SimulationError

        try:
            wait = float(wait_raw)
        except ValueError:
            raise ApiParamError(
                f"parameter 'wait' must be a number of sim seconds, "
                f"got {wait_raw!r}"
            )
        if wait < 0:
            raise ApiParamError(f"parameter 'wait' must be >= 0, got {wait}")
        wait = min(wait, MAX_ALERT_WAIT)
        baseline = (
            _int_param({"since": since_raw}, "since", 0)
            if since_raw is not None
            else len(self._combined_alerts())
        )
        sim = self.deployment.cluster.network.sim
        target = sim.now + wait
        while len(self._combined_alerts()) <= baseline and sim.now < target:
            try:
                fired = sim.run(until=target, max_events=64)
            except SimulationError:
                return  # reentrant call — serve the current view
            if fired == 0:
                # Event queue drained (or only events beyond the horizon,
                # in which case the clock has already advanced to target).
                return

    def _h_models(self, params, query):
        dm = self.deployment.detector_manager
        report = dm.last_job_report
        data = {
            "models_generated": dm.models_generated,
            "validations_run": dm.validations_run,
            "degraded_rounds": dm.degraded_rounds,
            "rounds_recovered": dm.rounds_recovered,
            "online_validators": dm.online_validator_summaries(),
            "last_job_report": None if report is None else {
                "backend": report.backend,
                "n_workers": report.n_workers,
                "wall_seconds": report.wall_seconds,
                "makespan_seconds": report.makespan_seconds,
            },
        }
        return self._envelope(data), "application/json"

    def _h_algorithms(self, params, query):
        from repro.ml.registry import category_of, list_algorithms

        data = [
            {"name": name, "category": category_of(name)}
            for name in list_algorithms()
        ]
        return self._envelope(data), "application/json"

    def _h_catalog(self, params, query):
        from repro.core.features.catalog import FEATURE_CATALOG

        category = query.get("category")
        scope = query.get("scope")
        rows = [
            {
                "name": name,
                "category": definition.category.value,
                "scope": definition.scope.value,
                "description": definition.description,
            }
            for name, definition in sorted(FEATURE_CATALOG.items())
            if (category is None or definition.category.value == category)
            and (scope is None or definition.scope.value == scope)
        ]
        window, pagination = paginate(rows, query)
        return self._envelope(window, pagination), "application/json"

    def _mastership_of(self, dpid: int) -> Optional[int]:
        from repro.errors import ControllerError

        try:
            return self.deployment.cluster.mastership.master_of(dpid)
        except ControllerError:
            return None

    def _h_switches(self, params, query):
        network = self.deployment.cluster.network
        rows = [
            {
                "dpid": dpid,
                "master_instance": self._mastership_of(dpid),
                "flows": switch.flow_count(),
                "ports": len(switch.ports),
            }
            for dpid, switch in sorted(network.switches.items())
        ]
        window, pagination = paginate(rows, query)
        return self._envelope(window, pagination), "application/json"

    def _h_switch_flows(self, params, query):
        try:
            dpid = int(params["dpid"])
        except ValueError:
            raise ApiParamError(f"switch id must be an integer, got "
                                f"{params['dpid']!r}")
        switch = self.deployment.cluster.network.switches.get(dpid)
        if switch is None:
            raise ApiParamError(f"no switch {dpid}")
        rows = [
            {
                "match": entry.match.to_dict(),
                "priority": entry.priority,
                "packet_count": entry.stats.packet_count,
                "byte_count": entry.stats.byte_count,
                "idle_timeout": entry.idle_timeout,
                "hard_timeout": entry.hard_timeout,
                "app_id": entry.app_id,
                "table_id": entry.table_id,
            }
            for entry in switch.table.entries
        ]
        window, pagination = paginate(rows, query)
        return self._envelope(window, pagination), "application/json"

    def _h_health(self, params, query):
        d = self.deployment
        shards = d.database.shard_status()
        degraded = (
            any(not shard["up"] for shard in shards)
            or d.feature_manager.pending_writes > 0
        )
        data = {
            "status": "degraded" if degraded else "ok",
            "shards": shards,
            "pending_feature_writes": d.feature_manager.pending_writes,
            "degraded_rounds": d.detector_manager.degraded_rounds,
            "rounds_recovered": d.detector_manager.rounds_recovered,
            "instances": [
                {"instance_id": inst.instance_id, "started": inst._started}
                for inst in d.instances
            ],
            "mastership": {
                str(dpid): self._mastership_of(dpid)
                for dpid in sorted(d.cluster.network.switches)
            },
            "monitoring": d.resource_manager.current_fidelity(),
        }
        return self._envelope(data), "application/json"

    def _h_streaming_status(self, params, query):
        runtime = self.deployment.streaming
        if runtime is None:
            data = {"enabled": False}
        else:
            data = {"enabled": True, **runtime.summary()}
        return self._envelope(data), "application/json"

    def _h_metrics(self, params, query):
        snapshot = get_telemetry().snapshot()
        text = to_prometheus_text(snapshot)
        return text.encode("utf-8"), "text/plain; version=0.0.4"
