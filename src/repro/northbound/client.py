"""In-process WSGI driver for tests and load benchmarks.

:class:`LocalClient` calls a WSGI app directly — no sockets, no HTTP
parsing — so tests exercise exactly the routing/caching/error code paths
the real server runs, and ``benchmarks/bench_nb_api.py`` can measure
per-request serving cost without network noise.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import urlencode


@dataclass
class Response:
    """One response from a :class:`LocalClient` request."""

    status: int
    reason: str
    headers: List[Tuple[str, str]]
    body: bytes
    _header_map: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._header_map = {name.lower(): value for name, value in self.headers}

    def header(self, name: str) -> Optional[str]:
        return self._header_map.get(name.lower())

    @property
    def etag(self) -> Optional[str]:
        return self.header("ETag")

    def json(self) -> Any:
        return json.loads(self.body.decode("utf-8"))

    @property
    def text(self) -> str:
        return self.body.decode("utf-8")


class LocalClient:
    """Drive a WSGI app in-process with a requests-like ``get()``."""

    def __init__(self, app) -> None:
        self.app = app

    def get(
        self,
        path: str,
        params: Optional[Dict[str, Any]] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Response:
        return self.request("GET", path, params=params, headers=headers)

    def request(
        self,
        method: str,
        path: str,
        params: Optional[Dict[str, Any]] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Response:
        query_string = ""
        if "?" in path:
            path, query_string = path.split("?", 1)
        if params:
            extra = urlencode(params)
            query_string = f"{query_string}&{extra}" if query_string else extra
        environ: Dict[str, Any] = {
            "REQUEST_METHOD": method,
            "PATH_INFO": path,
            "QUERY_STRING": query_string,
            "SERVER_NAME": "localhost",
            "SERVER_PORT": "0",
            "SERVER_PROTOCOL": "HTTP/1.1",
            "wsgi.url_scheme": "http",
        }
        for name, value in (headers or {}).items():
            environ["HTTP_" + name.upper().replace("-", "_")] = value
        captured: Dict[str, Any] = {}

        def start_response(status: str, response_headers, exc_info=None):
            captured["status"] = status
            captured["headers"] = response_headers

        chunks = self.app(environ, start_response)
        body = b"".join(chunks)
        status_line = captured["status"]
        code, _, reason = status_line.partition(" ")
        return Response(
            status=int(code),
            reason=reason,
            headers=list(captured["headers"]),
            body=body,
        )
