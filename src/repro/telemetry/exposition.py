"""Exposition: Prometheus text format, JSON snapshots, summary tables.

The snapshot produced by :meth:`Telemetry.snapshot` is a plain dict; the
functions here render it for the three consumers the framework has —

* :func:`to_prometheus_text` — the ``athena metrics`` text output
  (Prometheus 0.0.4 exposition: ``# HELP`` / ``# TYPE`` / samples, with
  histograms expanded into ``_bucket{le=...}`` / ``_sum`` / ``_count``);
* :func:`to_json` — ``athena metrics --json`` and the benchmark
  artifacts (stable key order, so golden tests and diffs work);
* :func:`summary_rows` — the flattened name/labels/value rows the
  ``UIManager`` metrics table renders.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List


def _format_value(value: Any) -> str:
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def _format_labels(labels: Dict[str, str], extra: str = "") -> str:
    parts = [f'{key}="{labels[key]}"' for key in sorted(labels)]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def to_prometheus_text(snapshot: Dict[str, Any]) -> str:
    """Render a snapshot in the Prometheus text exposition format."""
    lines: List[str] = []
    for metric in snapshot.get("metrics", []):
        name = metric["name"]
        if metric.get("help"):
            lines.append(f"# HELP {name} {metric['help']}")
        lines.append(f"# TYPE {name} {metric['type']}")
        for sample in metric["samples"]:
            labels = sample.get("labels", {})
            if metric["type"] == "histogram":
                for bound, cumulative in sample["buckets"]:
                    le = "+Inf" if bound == "+Inf" else _format_value(float(bound))
                    le_label = 'le="' + le + '"'
                    lines.append(
                        f"{name}_bucket{_format_labels(labels, le_label)}"
                        f" {cumulative}"
                    )
                lines.append(
                    f"{name}_sum{_format_labels(labels)} "
                    f"{_format_value(sample['sum'])}"
                )
                lines.append(
                    f"{name}_count{_format_labels(labels)} {sample['count']}"
                )
            else:
                lines.append(
                    f"{name}{_format_labels(labels)} "
                    f"{_format_value(sample['value'])}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def to_json(snapshot: Dict[str, Any], indent: int = 2) -> str:
    """Render a snapshot as stable JSON."""
    return json.dumps(snapshot, indent=indent, sort_keys=True, default=str)


def summary_rows(snapshot: Dict[str, Any]) -> List[Dict[str, str]]:
    """Flatten a snapshot into ``{metric, labels, value}`` table rows.

    Histograms summarise to ``count / mean``; counters and gauges to
    their value.  Rows keep snapshot (name) order.
    """
    rows: List[Dict[str, str]] = []
    for metric in snapshot.get("metrics", []):
        for sample in metric["samples"]:
            labels = sample.get("labels", {})
            label_text = ",".join(
                f"{key}={labels[key]}" for key in sorted(labels)
            )
            if metric["type"] == "histogram":
                count = sample["count"]
                mean = sample["sum"] / count if count else 0.0
                value = f"n={count} mean={mean:.6f}s"
            else:
                value = _format_value(sample["value"])
            rows.append(
                {
                    "metric": metric["name"],
                    "type": metric["type"],
                    "labels": label_text,
                    "value": value,
                }
            )
    return rows
