"""Metric primitives: counters, gauges, fixed-bucket histograms.

The registry hands out *instruments*.  When telemetry is disabled (the
default), every request returns the shared :data:`NULL_INSTRUMENT` — a
do-nothing singleton whose ``inc``/``set``/``observe``/``time`` methods
allocate nothing and touch no clocks, so instrumented hot paths cost one
no-op method call per event.  Call sites therefore bind instruments once
at construction time and never check an enabled flag themselves.

Label semantics follow the Prometheus client model: an instrument
declared with ``labelnames`` is a parent; ``labels(switch="s1")``
returns (and memoises) the child that actually carries a value.  A
per-metric cardinality cap bounds memory — once ``max_label_sets``
children exist, further label sets collapse into a single ``_overflow``
child and are counted in ``dropped_label_sets``.

Metric names follow ``athena_<layer>_<name>_<unit>`` (see
docs/TELEMETRY.md); the registry enforces the character set and rejects
re-registration with a different type or label schema.
"""

from __future__ import annotations

import bisect
import re
from typing import Any, Dict, List, Optional, Sequence, Tuple, Type

from repro.errors import TelemetryError
from repro.telemetry.clocks import wall_now

#: Latency buckets (seconds) tuned for per-event control-plane work:
#: 10us .. 10s, roughly logarithmic.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*$")

#: Label-set key of the collapsed over-cardinality child.
_OVERFLOW = "_overflow"


class _NullTimer:
    """Context manager that does nothing — not even read a clock."""

    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        return False


_NULL_TIMER = _NullTimer()


class NullInstrument:
    """The shared do-nothing instrument of a disabled registry.

    One singleton serves every metric type: ``labels()`` returns itself,
    value-reporting properties read as zero, and mutators are no-ops.
    """

    __slots__ = ()

    enabled = False
    kind = "null"

    def labels(self, **labels: Any) -> "NullInstrument":
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def time(self) -> _NullTimer:
        return _NULL_TIMER

    @property
    def value(self) -> float:
        return 0.0

    @property
    def sum(self) -> float:
        return 0.0

    @property
    def count(self) -> int:
        return 0


NULL_INSTRUMENT = NullInstrument()


class _Timer:
    """Context manager observing its wall-clock duration into a histogram."""

    __slots__ = ("_hist", "_started")

    def __init__(self, hist: "Histogram") -> None:
        self._hist = hist
        self._started = wall_now()

    def __enter__(self) -> "_Timer":
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        # Record on failure too: a span/op that raised still cost time.
        self._hist.observe(wall_now() - self._started)
        return False


class Instrument:
    """Base class: name, help text, and labelled children."""

    kind = "untyped"
    enabled = True

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        deterministic: bool = True,
        max_label_sets: int = 64,
    ) -> None:
        if not _NAME_RE.match(name):
            raise TelemetryError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        #: Whether snapshots taken under ``deterministic_only`` keep this
        #: metric: counters of simulated events are reproducible, wall-time
        #: histograms are not.
        self.deterministic = deterministic
        self.max_label_sets = max_label_sets
        self._children: Dict[Tuple[str, ...], Instrument] = {}
        self.dropped_label_sets = 0

    # -- labels --------------------------------------------------------------

    def labels(self, **labels: Any) -> "Instrument":
        """The child instrument carrying this exact label set."""
        if not self.labelnames:
            raise TelemetryError(f"{self.name} was declared without labels")
        if set(labels) != set(self.labelnames):
            raise TelemetryError(
                f"{self.name} expects labels {self.labelnames}, got "
                f"{tuple(sorted(labels))}"
            )
        key = tuple(str(labels[name]) for name in self.labelnames)
        child = self._children.get(key)
        if child is None:
            if len(self._children) >= self.max_label_sets:
                self.dropped_label_sets += 1
                return self._overflow_child()
            child = self._make_child()
            self._children[key] = child
        return child

    def _overflow_child(self) -> "Instrument":
        key = (_OVERFLOW,) * len(self.labelnames)
        child = self._children.get(key)
        if child is None:
            child = self._make_child()
            self._children[key] = child
        return child

    def _make_child(self) -> "Instrument":
        return type(self)(
            self.name,
            self.help,
            deterministic=self.deterministic,
            max_label_sets=self.max_label_sets,
        )

    def _require_leaf(self) -> None:
        if self.labelnames:
            raise TelemetryError(
                f"{self.name} has labels {self.labelnames}; call "
                f".labels(...) before recording"
            )

    # -- collection ----------------------------------------------------------

    def _sample(self) -> Dict[str, Any]:
        raise NotImplementedError

    def _reset_value(self) -> None:
        raise NotImplementedError

    def collect(self) -> Dict[str, Any]:
        """One snapshot entry: metadata plus every labelled sample."""
        samples: List[Dict[str, Any]] = []
        if self.labelnames:
            for key in sorted(self._children):
                sample = self._children[key]._sample()
                sample["labels"] = dict(zip(self.labelnames, key))
                samples.append(sample)
        else:
            sample = self._sample()
            sample["labels"] = {}
            samples.append(sample)
        return {
            "name": self.name,
            "type": self.kind,
            "help": self.help,
            "deterministic": self.deterministic,
            "samples": samples,
        }

    def reset(self) -> None:
        """Zero this instrument and all its children (refs stay valid)."""
        self._reset_value()
        for child in self._children.values():
            child.reset()
        self.dropped_label_sets = 0


class Counter(Instrument):
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise TelemetryError(f"{self.name}: counters only go up")
        self._require_leaf()
        self._value += amount

    @property
    def value(self) -> float:
        if self.labelnames:
            return sum(c.value for c in self._children.values())
        return self._value

    def _sample(self) -> Dict[str, Any]:
        return {"value": self._value}

    def _reset_value(self) -> None:
        self._value = 0.0


class Gauge(Instrument):
    """A value that can go up and down (occupancy, rates, last-seen)."""

    kind = "gauge"

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self._value = 0.0

    def set(self, value: float) -> None:
        self._require_leaf()
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._require_leaf()
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._require_leaf()
        self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def _sample(self) -> Dict[str, Any]:
        return {"value": self._value}

    def _reset_value(self) -> None:
        self._value = 0.0


class Histogram(Instrument):
    """Fixed-bucket histogram with a cumulative-``le`` exposition.

    An observation equal to a bucket's upper bound lands *in* that
    bucket (Prometheus ``le`` semantics); anything above the last bound
    lands in the implicit ``+Inf`` bucket.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        deterministic: bool = False,
        max_label_sets: int = 64,
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        super().__init__(
            name,
            help,
            labelnames=labelnames,
            deterministic=deterministic,
            max_label_sets=max_label_sets,
        )
        bounds = tuple(buckets if buckets is not None else DEFAULT_BUCKETS)
        if list(bounds) != sorted(set(bounds)):
            raise TelemetryError(f"{name}: bucket bounds must strictly increase")
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # last slot = +Inf
        self._sum = 0.0
        self._count = 0

    def _make_child(self) -> "Histogram":
        return Histogram(
            self.name,
            self.help,
            deterministic=self.deterministic,
            max_label_sets=self.max_label_sets,
            buckets=self.buckets,
        )

    def observe(self, value: float) -> None:
        self._require_leaf()
        self._sum += value
        self._count += 1
        self._counts[bisect.bisect_left(self.buckets, value)] += 1

    def time(self) -> _Timer:
        """Context manager observing its own wall-clock duration."""
        return _Timer(self)

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def _sample(self) -> Dict[str, Any]:
        cumulative: List[List[Any]] = []
        running = 0
        for bound, bucket_count in zip(self.buckets, self._counts):
            running += bucket_count
            cumulative.append([bound, running])
        cumulative.append(["+Inf", running + self._counts[-1]])
        return {"count": self._count, "sum": self._sum, "buckets": cumulative}

    def _reset_value(self) -> None:
        self._counts = [0] * (len(self.buckets) + 1)
        self._sum = 0.0
        self._count = 0


class MetricsRegistry:
    """Creates, deduplicates, and snapshots instruments.

    ``enabled=False`` turns every request into :data:`NULL_INSTRUMENT`;
    nothing is registered and snapshots come back empty, which is what
    makes disabled-mode instrumentation nearly free.
    """

    def __init__(self, enabled: bool = True, max_label_sets: int = 64) -> None:
        self.enabled = enabled
        self.max_label_sets = max_label_sets
        self._metrics: Dict[str, Instrument] = {}

    # -- instrument factories ------------------------------------------------

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Any:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Any:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
        deterministic: bool = False,
    ) -> Any:
        return self._get_or_create(
            Histogram,
            name,
            help,
            labelnames,
            buckets=buckets,
            deterministic=deterministic,
        )

    def _get_or_create(
        self,
        cls: Type[Instrument],
        name: str,
        help: str,
        labelnames: Sequence[str],
        **kwargs: Any,
    ) -> Any:
        if not self.enabled:
            return NULL_INSTRUMENT
        existing = self._metrics.get(name)
        if existing is not None:
            if type(existing) is not cls:
                raise TelemetryError(
                    f"{name} already registered as {existing.kind}, not "
                    f"{cls.kind}"
                )
            if existing.labelnames != tuple(labelnames):
                raise TelemetryError(
                    f"{name} already registered with labels "
                    f"{existing.labelnames}, not {tuple(labelnames)}"
                )
            return existing
        if cls is Histogram:
            metric: Instrument = Histogram(
                name,
                help,
                labelnames=labelnames,
                max_label_sets=self.max_label_sets,
                **kwargs,
            )
        else:
            metric = cls(
                name,
                help,
                labelnames=labelnames,
                max_label_sets=self.max_label_sets,
                **kwargs,
            )
        self._metrics[name] = metric
        return metric

    # -- inspection ----------------------------------------------------------

    def get(self, name: str) -> Optional[Instrument]:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def snapshot(self, deterministic_only: bool = False) -> List[Dict[str, Any]]:
        """Every metric's current state, sorted by name.

        ``deterministic_only`` drops wall-time-derived metrics so two
        identical simulated runs produce identical snapshots.
        """
        entries = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if deterministic_only and not metric.deterministic:
                continue
            entries.append(metric.collect())
        return entries

    def reset(self) -> None:
        """Zero every registered instrument in place (refs stay valid)."""
        for metric in self._metrics.values():
            metric.reset()
