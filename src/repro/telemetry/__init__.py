"""repro.telemetry — unified metrics, tracing, and profiling.

The observability substrate of the Athena reproduction (docs/TELEMETRY.md):

* :class:`MetricsRegistry` with :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` primitives — label-aware, snapshot-able, and
  near-free when disabled (the default);
* span-based tracing with nested spans, dual wall/sim-clock durations,
  and a bounded ring-buffer exporter;
* profiling hooks (:func:`timed`, :class:`StageProfiler`) that
  aggregate into histograms;
* exposition — Prometheus text, JSON snapshots, and summary tables —
  surfaced by ``python -m repro.cli metrics`` and the UI Manager.

Enable with ``ATHENA_TELEMETRY=1`` in the environment or
``telemetry.configure(enabled=True)`` *before* constructing deployments
(components bind their instruments at construction time).
"""

from __future__ import annotations

from repro.telemetry.clocks import Stopwatch, cpu_now, wall_now
from repro.telemetry.exposition import summary_rows, to_json, to_prometheus_text
from repro.telemetry.profiling import StageProfiler, timed
from repro.telemetry.registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_INSTRUMENT,
    NullInstrument,
)
from repro.telemetry.runtime import (
    ENV_FLAG,
    Telemetry,
    configure,
    env_enabled,
    get_telemetry,
    reset_telemetry,
)
from repro.telemetry.tracing import SpanRecord, Tracer

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "ENV_FLAG",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_INSTRUMENT",
    "NullInstrument",
    "SpanRecord",
    "StageProfiler",
    "Stopwatch",
    "Telemetry",
    "Tracer",
    "configure",
    "cpu_now",
    "env_enabled",
    "get_telemetry",
    "reset_telemetry",
    "summary_rows",
    "timed",
    "to_json",
    "to_prometheus_text",
    "wall_now",
]
