"""The process-wide telemetry switchboard.

One :class:`Telemetry` facade bundles the metrics registry and the
tracer.  A process has a single active facade, created lazily from the
``ATHENA_TELEMETRY`` environment variable (default **off** — the
instrumented framework must cost nothing when nobody is looking) and
replaceable with :func:`configure`.

Components bind their instruments at construction time, so enable
telemetry *before* building a deployment::

    from repro import telemetry
    telemetry.configure(enabled=True)
    athena = AthenaDeployment(cluster)       # binds real instruments
    ...
    snapshot = telemetry.get_telemetry().snapshot()

Deployments register the simulated clock via
:meth:`Telemetry.set_sim_time_source`, which is what gives spans their
deterministic sim-clock durations.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Dict, Optional

from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.tracing import Tracer

#: Environment switch: "1" / "true" / "yes" / "on" enable telemetry.
ENV_FLAG = "ATHENA_TELEMETRY"


def env_enabled() -> bool:
    """Whether the environment asks for telemetry."""
    return os.environ.get(ENV_FLAG, "0").strip().lower() in (
        "1", "true", "yes", "on",
    )


class Telemetry:
    """Metrics + tracing behind one enabled/disabled switch."""

    def __init__(
        self,
        enabled: Optional[bool] = None,
        ring_size: int = 512,
        max_label_sets: int = 64,
    ) -> None:
        self.enabled = env_enabled() if enabled is None else bool(enabled)
        self.registry = MetricsRegistry(
            enabled=self.enabled, max_label_sets=max_label_sets
        )
        self.tracer = Tracer(enabled=self.enabled, ring_size=ring_size)

    def set_sim_time_source(self, source: Optional[Callable[[], float]]) -> None:
        """Register the simulated clock spans read their sim durations from."""
        self.tracer.sim_time_source = source

    def span(self, name: str) -> Any:
        """Shorthand for ``tracer.span(name)``."""
        return self.tracer.span(name)

    def snapshot(self, deterministic_only: bool = False) -> Dict[str, Any]:
        """The full telemetry state: metrics plus finished spans."""
        return {
            "enabled": self.enabled,
            "metrics": self.registry.snapshot(
                deterministic_only=deterministic_only
            ),
            "spans": self.tracer.snapshot(
                deterministic_only=deterministic_only
            ),
        }

    def reset(self) -> None:
        """Zero metrics and drop finished spans (bindings stay valid)."""
        self.registry.reset()
        self.tracer.reset()


_ACTIVE: Optional[Telemetry] = None


def get_telemetry() -> Telemetry:
    """The process's active facade (created from the environment on
    first use)."""
    global _ACTIVE
    if _ACTIVE is None:
        _ACTIVE = Telemetry()
    return _ACTIVE


def configure(
    enabled: Optional[bool] = None,
    ring_size: int = 512,
    max_label_sets: int = 64,
) -> Telemetry:
    """Install a fresh facade (e.g. ``configure(enabled=True)``).

    Instruments already bound by existing components keep pointing at
    the *previous* facade — construct deployments after configuring.
    """
    global _ACTIVE
    _ACTIVE = Telemetry(
        enabled=enabled, ring_size=ring_size, max_label_sets=max_label_sets
    )
    return _ACTIVE


def reset_telemetry() -> None:
    """Drop the active facade; the next access re-reads the environment."""
    global _ACTIVE
    _ACTIVE = None
