"""Span-based tracing with dual wall/sim-clock durations.

``tracer.span("feature.extract")`` opens a span; spans nest (the tracer
keeps an explicit stack, the framework is single-threaded per process)
and every finished span records

* its **wall** duration (``clocks.wall_now``), for profiling real cost;
* its **sim** start/duration (via the registered sim-clock source), so
  traces taken from a deterministic run are themselves deterministic;
* whether it exited through an exception (spans are exception-safe: the
  record is emitted and the exception propagates).

Finished spans land in a bounded ring buffer — the exporter —
so tracing a long run keeps the most recent ``ring_size`` spans and
constant memory.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional

from repro.telemetry.clocks import wall_now


@dataclass
class SpanRecord:
    """One finished span."""

    name: str
    parent: Optional[str]
    depth: int
    wall_seconds: float
    sim_start: Optional[float] = None
    sim_seconds: Optional[float] = None
    error: Optional[str] = None
    attributes: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self, deterministic_only: bool = False) -> Dict[str, Any]:
        entry: Dict[str, Any] = {
            "name": self.name,
            "parent": self.parent,
            "depth": self.depth,
            "error": self.error,
            "sim_start": self.sim_start,
            "sim_seconds": self.sim_seconds,
        }
        if self.attributes:
            entry["attributes"] = dict(self.attributes)
        if not deterministic_only:
            entry["wall_seconds"] = self.wall_seconds
        return entry


class _NullSpan:
    """Disabled-mode span: no clock reads, no allocation."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        return False

    def set_attribute(self, key: str, value: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class _Span:
    """An open span; closes (and records) on context-manager exit."""

    __slots__ = ("_tracer", "name", "parent", "depth", "_wall_started",
                 "_sim_started", "attributes")

    def __init__(
        self, tracer: "Tracer", name: str, parent: Optional[str], depth: int
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.parent = parent
        self.depth = depth
        self._wall_started = wall_now()
        source = tracer.sim_time_source
        self._sim_started = source() if source is not None else None
        self.attributes: Dict[str, Any] = {}

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def __enter__(self) -> "_Span":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        sim_seconds = None
        source = self._tracer.sim_time_source
        if self._sim_started is not None and source is not None:
            sim_seconds = source() - self._sim_started
        self._tracer._finish(
            SpanRecord(
                name=self.name,
                parent=self.parent,
                depth=self.depth,
                wall_seconds=wall_now() - self._wall_started,
                sim_start=self._sim_started,
                sim_seconds=sim_seconds,
                error=exc_type.__name__ if exc_type is not None else None,
                attributes=self.attributes,
            )
        )
        return False  # never swallow the exception


class Tracer:
    """Creates spans and keeps the bounded ring of finished ones."""

    def __init__(
        self,
        enabled: bool = True,
        ring_size: int = 512,
        sim_time_source: Optional[Callable[[], float]] = None,
    ) -> None:
        self.enabled = enabled
        self.sim_time_source = sim_time_source
        self.finished: Deque[SpanRecord] = deque(maxlen=ring_size)
        self._stack: List[_Span] = []
        self.spans_started = 0
        self.spans_errored = 0

    def span(self, name: str) -> Any:
        """Open a span nested under the currently active one."""
        if not self.enabled:
            return _NULL_SPAN
        parent = self._stack[-1].name if self._stack else None
        span = _Span(self, name, parent, depth=len(self._stack))
        self._stack.append(span)
        self.spans_started += 1
        return span

    def _finish(self, record: SpanRecord) -> None:
        # The closing span is the innermost open one by construction; a
        # mismatched exit (exotic generator use) just unwinds to it.
        for idx in range(len(self._stack) - 1, -1, -1):
            if self._stack[idx].name == record.name:
                del self._stack[idx:]
                break
        if record.error is not None:
            self.spans_errored += 1
        self.finished.append(record)

    def snapshot(self, deterministic_only: bool = False) -> List[Dict[str, Any]]:
        """Finished spans, oldest first."""
        return [
            record.to_dict(deterministic_only=deterministic_only)
            for record in self.finished
        ]

    def reset(self) -> None:
        self.finished.clear()
        self._stack.clear()
        self.spans_started = 0
        self.spans_errored = 0
