"""Lightweight profiling hooks over the metrics registry.

Two entry points:

* :func:`timed` — a decorator recording a function's wall duration into
  a histogram on the active registry.  Binding is lazy (the histogram is
  looked up on first call), so modules can decorate at import time, long
  before :func:`repro.telemetry.configure` runs.
* :class:`StageProfiler` — an opt-in per-stage profile: each
  ``with profiler.stage("normalise"):`` block aggregates into one
  ``{stage=...}``-labelled histogram, giving a pipeline a cheap
  flamegraph-by-numbers.

Both are no-ops (no clock reads) while telemetry is disabled.
"""

from __future__ import annotations

import functools
from typing import Any, Callable, Optional

from repro.telemetry.registry import MetricsRegistry


def timed(
    metric: str,
    help: str = "",
    registry: Optional[MetricsRegistry] = None,
) -> Callable:
    """Decorate a function to record its duration into ``metric``.

    >>> @timed("athena_feature_normalise_seconds")
    ... def normalise(matrix): ...
    """

    def decorate(fn: Callable) -> Callable:
        state = {"hist": None, "registry": None}

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            from repro.telemetry.runtime import get_telemetry

            reg = registry if registry is not None else get_telemetry().registry
            if state["hist"] is None or state["registry"] is not reg:
                state["registry"] = reg
                state["hist"] = reg.histogram(
                    metric, help or f"Duration of {fn.__qualname__}."
                )
            with state["hist"].time():
                return fn(*args, **kwargs)

        return wrapper

    return decorate


class StageProfiler:
    """Aggregates named pipeline stages into one labelled histogram."""

    def __init__(
        self,
        metric: str = "athena_profile_stage_seconds",
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if registry is None:
            from repro.telemetry.runtime import get_telemetry

            registry = get_telemetry().registry
        self._hist = registry.histogram(
            metric,
            "Wall seconds per profiled pipeline stage.",
            labelnames=("stage",),
        )
        self._stages: dict = {}

    def stage(self, name: str) -> Any:
        """Context manager timing one stage occurrence."""
        child = self._stages.get(name)
        if child is None:
            child = self._hist.labels(stage=name)
            self._stages[name] = child
        return child.time()
