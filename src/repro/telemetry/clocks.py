"""Wall- and CPU-clock access for measurement code.

This module is the one sanctioned home for duration clocks outside
``simkernel`` and the compute execution backends: athena-lint's ATH501
flags direct ``time.perf_counter()`` / ``time.process_time()`` calls
anywhere else, so every stopwatch in the framework routes through here
and stays auditable.  These clocks measure *how long real computation
took* — they never feed simulated timestamps (that is ``SimClock``'s
job), which is why using them cannot perturb a deterministic run.
"""

from __future__ import annotations

import time as _time
from typing import Callable


def wall_now() -> float:
    """Monotonic wall-clock seconds (duration measurement only)."""
    return _time.perf_counter()


def cpu_now() -> float:
    """Process CPU seconds (the Figure 11 service-demand clock)."""
    return _time.process_time()


class Stopwatch:
    """A started stopwatch over one of the duration clocks.

    >>> sw = Stopwatch()
    >>> ...work...
    >>> sw.elapsed()  # seconds since construction (or last restart)
    """

    __slots__ = ("_clock", "_started")

    def __init__(self, clock: Callable[[], float] = wall_now) -> None:
        self._clock = clock
        self._started = clock()

    def elapsed(self) -> float:
        """Seconds since the stopwatch (re)started."""
        return self._clock() - self._started

    def restart(self) -> float:
        """Reset the start point; returns the lap just completed."""
        now = self._clock()
        lap = now - self._started
        self._started = now
        return lap
