"""The detector of Braga et al. [10] — SOM over the original 6-tuple.

Table VI compares Athena's environment (18 switches, 10-tuple, K-Means,
3 controllers) against this prior work (3 switches, 6-tuple, SOM, 1
controller).  The 6-tuple of [10]: average packets per flow, average bytes
per flow, average duration per flow, percentage of pair-flows, growth of
single flows, growth of different ports — computed here from Athena flow
documents so both detectors run over the same data.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import MLError
from repro.ml.metrics import detection_rate, false_alarm_rate
from repro.ml.preprocessing import MinMaxNormalizer
from repro.ml.som import SelfOrganizingMap

#: The 6-tuple of Braga et al., derived per document from Athena features.
BRAGA_FEATURES = [
    "avg_packets_per_flow",
    "avg_bytes_per_flow",
    "avg_duration_per_flow",
    "pair_flow_percentage",
    "growth_single_flows",
    "growth_different_ports",
]


def braga_tuple(doc: Dict[str, Any]) -> List[float]:
    """Map one Athena flow document onto the 6-tuple of [10]."""
    return [
        doc.get("FLOW_PACKET_COUNT", 0.0),
        doc.get("FLOW_BYTE_COUNT", 0.0),
        doc.get("FLOW_DURATION_SEC", 0.0),
        doc.get("PAIR_FLOW_RATIO", 0.0) * 100.0,
        max(0.0, 1.0 - doc.get("PAIR_FLOW", 0.0)) * doc.get("DST_FLOW_FANIN", 0.0),
        doc.get("DST_FLOW_FANIN", 0.0),
    ]


class BragaSOMDetector:
    """SOM-based DDoS detection on the 6-tuple."""

    def __init__(
        self,
        rows: int = 4,
        cols: int = 4,
        epochs: int = 4,
        seed: int = 3,
    ) -> None:
        self.som = SelfOrganizingMap(rows=rows, cols=cols, epochs=epochs, seed=seed)
        self.normalizer = MinMaxNormalizer()
        self._fitted = False

    def _matrix(self, documents: List[Dict[str, Any]]) -> np.ndarray:
        if not documents:
            raise MLError("no documents for the Braga detector")
        return np.array([braga_tuple(doc) for doc in documents])

    @staticmethod
    def _labels(documents: List[Dict[str, Any]]) -> np.ndarray:
        return np.array([float(doc.get("label") or 0) for doc in documents])

    def train(self, documents: List[Dict[str, Any]], max_rows: int = 20000) -> None:
        """Fit the map and label neurons from marked entries.

        The per-sample Kohonen update is O(n · epochs), so training uses a
        deterministic subsample beyond ``max_rows`` (as [10] trained on
        collected windows, not full traces).
        """
        matrix = self.normalizer.fit_transform(self._matrix(documents))
        labels = self._labels(documents)
        if matrix.shape[0] > max_rows:
            step = matrix.shape[0] // max_rows
            matrix = matrix[::step][:max_rows]
            labels = labels[::step][:max_rows]
        self.som.fit(matrix)
        self.som.label_clusters(matrix, labels)
        self._fitted = True

    def predict(self, documents: List[Dict[str, Any]]) -> np.ndarray:
        if not self._fitted:
            raise MLError("train the Braga detector first")
        matrix = self.normalizer.transform(self._matrix(documents))
        return self.som.predict(matrix)

    def evaluate(
        self, documents: List[Dict[str, Any]]
    ) -> Tuple[float, float]:
        """(detection rate, false alarm rate) over labelled documents."""
        predictions = self.predict(documents)
        labels = self._labels(documents)
        return (
            detection_rate(labels, predictions),
            false_alarm_rate(labels, predictions),
        )
