"""Baseline implementations Athena is compared against.

* :mod:`repro.baselines.raw_ddos` — the DDoS detector written *directly*
  against the database and compute clusters, the way the paper's Spark and
  Hama baselines were: manual query construction, manual parsing and
  validation, hand-rolled distributed normalisation, hand-rolled
  distributed K-Means / logistic regression, manual evaluation and report
  formatting.  Table VIII counts its source lines against the Athena app's.
* :mod:`repro.baselines.braga` — the SOM-based detector of Braga et
  al. [10] on its original 6-tuple, the prior work of Table VI.
"""

from repro.baselines.braga import BragaSOMDetector
from repro.baselines.raw_ddos import (
    RawDDoSKMeansJob,
    RawDDoSLogisticJob,
    raw_kmeans_source_lines,
    raw_logistic_source_lines,
)

__all__ = [
    "BragaSOMDetector",
    "RawDDoSKMeansJob",
    "RawDDoSLogisticJob",
    "raw_kmeans_source_lines",
    "raw_logistic_source_lines",
]
