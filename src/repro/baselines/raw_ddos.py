"""The DDoS detector implemented WITHOUT Athena (the Table VIII baseline).

This module re-implements Scenario 1 the way the paper's Spark [32] and
Hama [35] baselines had to: directly against the storage and compute
substrates, with none of Athena's abstractions.  Everything the Athena app
gets for free is hand-rolled here —

* query construction against the document store,
* record parsing, schema validation and error handling,
* distributed min-max statistics and normalisation,
* feature weighting and malicious-entry marking,
* a distributed K-Means (initialisation, per-partition statistics,
  driver-side merging, empty-cluster handling, convergence checks),
* a distributed logistic-regression variant (per-partition gradients),
* cluster labelling, distributed validation, confusion-matrix computation
  and report formatting.

The Table VIII bench counts this module's effective source lines against
the Athena application's; the Figure 10 bench also runs
:class:`RawDDoSKMeansJob` as the "application on Spark" whose test time
Athena's is compared with (the ≤10% overhead claim).
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.compute import ComputeCluster, PartitionedDataset
from repro.distdb import DatabaseCluster
from repro.errors import ReproError
from repro.telemetry.clocks import Stopwatch


class RawJobError(ReproError):
    """Raised on any failure inside the hand-rolled pipeline."""


# ---------------------------------------------------------------------------
# Stage 1: query construction and record extraction
# ---------------------------------------------------------------------------


def build_time_window_filter(
    scope: str, start: float, end: float
) -> Dict[str, Any]:
    """Hand-build the document filter the Athena query compiler emits."""
    if end < start:
        raise RawJobError(f"empty time window [{start}, {end}]")
    return {
        "$and": [
            {"feature_scope": {"$eq": scope}},
            {"timestamp": {"$gte": start}},
            {"timestamp": {"$lte": end}},
        ]
    }


def fetch_documents(
    database: DatabaseCluster,
    collection: str,
    scope: str,
    start: float,
    end: float,
) -> List[Dict[str, Any]]:
    """Scatter-gather the raw documents for one time window."""
    filter_ = build_time_window_filter(scope, start, end)
    documents = database.find(collection, filter_)
    if not documents:
        raise RawJobError(
            f"no documents in {collection!r} for window [{start}, {end}]"
        )
    return documents


def extract_value(doc: Dict[str, Any], column: str) -> float:
    """Pull one numeric field out of a document, with validation."""
    value = doc.get(column)
    if value is None:
        return 0.0
    if isinstance(value, bool):
        raise RawJobError(f"boolean value in numeric column {column!r}")
    if not isinstance(value, (int, float)):
        raise RawJobError(
            f"non-numeric value {value!r} in column {column!r}"
        )
    return float(value)


def documents_to_matrix(
    documents: Sequence[Dict[str, Any]],
    columns: Sequence[str],
    label_column: Optional[str] = None,
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Manual parsing of documents into a dense matrix plus labels."""
    if not columns:
        raise RawJobError("no feature columns configured")
    n_rows = len(documents)
    matrix = np.zeros((n_rows, len(columns)))
    labels = np.zeros(n_rows) if label_column is not None else None
    for row_idx, doc in enumerate(documents):
        for col_idx, column in enumerate(columns):
            matrix[row_idx, col_idx] = extract_value(doc, column)
        if labels is not None:
            raw_label = doc.get(label_column)
            if raw_label not in (0, 1, 0.0, 1.0, None):
                raise RawJobError(f"bad label {raw_label!r}")
            labels[row_idx] = float(raw_label or 0)
    return matrix, labels


# ---------------------------------------------------------------------------
# Stage 2: distributed normalisation statistics
# ---------------------------------------------------------------------------


def partition_minmax(partition: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Map task: per-partition column minima and maxima."""
    if partition.shape[0] == 0:
        d = partition.shape[1]
        return np.full(d, np.inf), np.full(d, -np.inf)
    return partition.min(axis=0), partition.max(axis=0)


def merge_minmax(
    partials: List[Tuple[np.ndarray, np.ndarray]]
) -> Tuple[np.ndarray, np.ndarray]:
    """Reduce: global minima/maxima from the per-partition ones."""
    minima = np.min(np.stack([p[0] for p in partials]), axis=0)
    maxima = np.max(np.stack([p[1] for p in partials]), axis=0)
    return minima, maxima


def compute_global_minmax(
    compute: ComputeCluster, dataset: PartitionedDataset
) -> Tuple[np.ndarray, np.ndarray, Any]:
    """Distributed min-max statistics over a partitioned matrix."""
    report = compute.run_map(
        dataset,
        map_fn=partition_minmax,
        reduce_fn=merge_minmax,
    )
    minima, maxima = report.result
    return minima, maxima, report


def normalise_partition(
    partition: np.ndarray,
    minima: np.ndarray,
    span: np.ndarray,
    weights: np.ndarray,
) -> np.ndarray:
    """Apply min-max scaling and column weights to one partition."""
    return ((partition - minima) / span) * weights


# ---------------------------------------------------------------------------
# Stage 3: hand-rolled distributed K-Means
# ---------------------------------------------------------------------------


def kmeans_init_centers(
    sample: np.ndarray, k: int, seed: int
) -> np.ndarray:
    """Weighted farthest-point seeding over a driver-side sample."""
    rng = np.random.default_rng(seed)
    if sample.shape[0] < k:
        raise RawJobError(f"sample smaller than k={k}")
    centers = np.empty((k, sample.shape[1]))
    centers[0] = sample[rng.integers(0, sample.shape[0])]
    closest = np.full(sample.shape[0], np.inf)
    for i in range(1, k):
        distances = np.sum((sample - centers[i - 1]) ** 2, axis=1)
        closest = np.minimum(closest, distances)
        total = closest.sum()
        if total <= 0:
            centers[i:] = sample[rng.integers(0, sample.shape[0], size=k - i)]
            break
        centers[i] = sample[rng.choice(sample.shape[0], p=closest / total)]
    return centers


def kmeans_assign(partition: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """Nearest-center assignment for one partition."""
    cross = partition @ centers.T
    norms = (centers ** 2).sum(axis=1)
    return np.argmin(norms[None, :] - 2 * cross, axis=1)


def kmeans_partition_stats(
    partition: np.ndarray, centers: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, float]:
    """Map task: per-cluster sums/counts plus partition inertia."""
    assignments = kmeans_assign(partition, centers)
    k, d = centers.shape
    sums = np.zeros((k, d))
    counts = np.zeros(k)
    np.add.at(sums, assignments, partition)
    np.add.at(counts, assignments, 1.0)
    inertia = float(np.sum((partition - centers[assignments]) ** 2))
    return sums, counts, inertia


def kmeans_merge_stats(
    partials: List[Tuple[np.ndarray, np.ndarray, float]],
    centers: np.ndarray,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, float]:
    """Reduce: new centers, re-seeding empty clusters from jittered means."""
    sums = sum(p[0] for p in partials)
    counts = sum(p[1] for p in partials)
    inertia = float(sum(p[2] for p in partials))
    new_centers = centers.copy()
    for cluster_idx in range(centers.shape[0]):
        if counts[cluster_idx] > 0:
            new_centers[cluster_idx] = sums[cluster_idx] / counts[cluster_idx]
        else:
            busiest = int(np.argmax(counts))
            jitter = rng.normal(0.0, 1e-3, size=centers.shape[1])
            new_centers[cluster_idx] = new_centers[busiest] + jitter
    return new_centers, inertia


@dataclass
class RawValidationReport:
    """Hand-built confusion summary."""

    total: int = 0
    true_positives: int = 0
    false_positives: int = 0
    true_negatives: int = 0
    false_negatives: int = 0
    elapsed_seconds: float = 0.0
    makespan_seconds: float = 0.0

    @property
    def detection_rate(self) -> float:
        denominator = self.true_positives + self.false_negatives
        return self.true_positives / denominator if denominator else 0.0

    @property
    def false_alarm_rate(self) -> float:
        denominator = self.false_positives + self.true_negatives
        return self.false_positives / denominator if denominator else 0.0

    def render(self) -> str:
        lines = [
            "=" * 60,
            f"Total            : {self.total:,}",
            f"True Positive    : {self.true_positives:,}",
            f"False Positive   : {self.false_positives:,}",
            f"True Negative    : {self.true_negatives:,}",
            f"False Negative   : {self.false_negatives:,}",
            f"Detection Rate   : {self.detection_rate}",
            f"False Alarm Rate : {self.false_alarm_rate}",
            "=" * 60,
        ]
        return "\n".join(lines)


class RawDDoSKMeansJob:
    """The full hand-rolled K-Means DDoS pipeline."""

    def __init__(
        self,
        database: DatabaseCluster,
        compute: ComputeCluster,
        collection: str = "athena_features",
        columns: Optional[Sequence[str]] = None,
        weights: Optional[Dict[str, float]] = None,
        k: int = 8,
        max_iterations: int = 20,
        epsilon: float = 1e-4,
        seed: int = 1,
        n_partitions: Optional[int] = None,
    ) -> None:
        self.database = database
        self.compute = compute
        self.collection = collection
        from repro.workloads.ddos import DDOS_FEATURES

        self.columns = list(columns or DDOS_FEATURES)
        weight_map = weights or {"PAIR_FLOW": 1.5, "PAIR_FLOW_RATIO": 1.5}
        self.weights = np.array(
            [weight_map.get(column, 1.0) for column in self.columns]
        )
        self.k = k
        self.max_iterations = max_iterations
        self.epsilon = epsilon
        self.seed = seed
        self.n_partitions = n_partitions
        self.centers: Optional[np.ndarray] = None
        self.cluster_malicious: Dict[int, bool] = {}
        self._minima: Optional[np.ndarray] = None
        self._span: Optional[np.ndarray] = None
        self.train_report = None

    def _partitions(self) -> int:
        return self.n_partitions or max(1, self.compute.n_workers * 2)

    def _prepare(
        self, documents: List[Dict[str, Any]]
    ) -> Tuple[PartitionedDataset, np.ndarray]:
        matrix, labels = documents_to_matrix(documents, self.columns, "label")
        dataset = PartitionedDataset.from_matrix(matrix, self._partitions())
        return dataset, labels

    def train(
        self,
        start: float,
        end: float,
        documents: Optional[List[Dict[str, Any]]] = None,
    ) -> None:
        """Fit normalisation stats, then run distributed Lloyd iterations."""
        if documents is None:
            documents = fetch_documents(
                self.database, self.collection, "flow", start, end
            )
        dataset, labels = self._prepare(documents)
        minima, maxima, _ = compute_global_minmax(self.compute, dataset)
        span = maxima - minima
        span[span == 0] = 1.0
        self._minima, self._span = minima, span
        scaled = dataset.map_partitions(
            lambda part: normalise_partition(part, minima, span, self.weights)
        )
        rng = np.random.default_rng(self.seed)
        sample = scaled.partition(0)
        centers = kmeans_init_centers(sample, min(self.k, sample.shape[0]), self.seed)

        def map_fn(partition, state):
            return kmeans_partition_stats(partition, state)

        def reduce_fn(partials, state):
            new_centers, _inertia = kmeans_merge_stats(partials, state, rng)
            return new_centers

        def converged(old, new):
            shift = float(np.sqrt(((new - old) ** 2).sum(axis=1)).max())
            return shift <= self.epsilon

        self.train_report = self.compute.run_iterative(
            scaled,
            map_fn,
            reduce_fn,
            initial_state=centers,
            rounds=self.max_iterations,
            converged=converged,
        )
        self.centers = self.train_report.result
        self._label_clusters(scaled, labels)

    def _label_clusters(
        self, scaled: PartitionedDataset, labels: np.ndarray
    ) -> None:
        """Majority-vote malicious labelling from the marked entries."""
        if self.centers is None:
            raise RawJobError("train before labelling clusters")
        assignments = np.concatenate(
            [kmeans_assign(part, self.centers) for part in scaled.partitions]
        )
        for cluster_idx in range(self.centers.shape[0]):
            members = labels[assignments == cluster_idx]
            self.cluster_malicious[cluster_idx] = (
                bool(members.mean() >= 0.5) if members.size else False
            )

    def validate(
        self,
        start: float,
        end: float,
        documents: Optional[List[Dict[str, Any]]] = None,
    ) -> RawValidationReport:
        """Distributed prediction plus manual confusion computation."""
        if self.centers is None or self._minima is None:
            raise RawJobError("train before validate")
        watch = Stopwatch()
        if documents is None:
            documents = fetch_documents(
                self.database, self.collection, "flow", start, end
            )
        dataset, labels = self._prepare(documents)
        minima, span, weights = self._minima, self._span, self.weights
        centers = self.centers
        malicious_clusters = np.array(
            [
                1.0 if self.cluster_malicious.get(idx, False) else 0.0
                for idx in range(centers.shape[0])
            ]
        )

        def map_fn(partition):
            scaled = normalise_partition(partition, minima, span, weights)
            return malicious_clusters[kmeans_assign(scaled, centers)]

        job = self.compute.run_map(
            dataset,
            map_fn=map_fn,
            reduce_fn=lambda partials: np.concatenate(partials),
        )
        predictions = job.result
        report = RawValidationReport(
            total=len(predictions),
            true_positives=int(((labels == 1) & (predictions == 1)).sum()),
            false_positives=int(((labels == 0) & (predictions == 1)).sum()),
            true_negatives=int(((labels == 0) & (predictions == 0)).sum()),
            false_negatives=int(((labels == 1) & (predictions == 0)).sum()),
            elapsed_seconds=watch.elapsed(),
            makespan_seconds=job.makespan_seconds,
        )
        self.validate_job_report = job
        return report


# ---------------------------------------------------------------------------
# Stage 4: the logistic-regression variant (Table VIII's second row)
# ---------------------------------------------------------------------------


def logistic_sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    ez = np.exp(z[~positive])
    out[~positive] = ez / (1.0 + ez)
    return out


def logistic_partition_gradient(
    partition: Tuple[np.ndarray, np.ndarray], state: Tuple[np.ndarray, float]
) -> Tuple[np.ndarray, float, int]:
    """Map task: partial gradient of the logistic loss."""
    rows, labels = partition
    beta, intercept = state
    probabilities = logistic_sigmoid(rows @ beta + intercept)
    error = probabilities - labels
    return rows.T @ error, float(error.sum()), rows.shape[0]


class RawDDoSLogisticJob:
    """Hand-rolled distributed logistic regression over the same pipeline."""

    def __init__(
        self,
        database: DatabaseCluster,
        compute: ComputeCluster,
        collection: str = "athena_features",
        columns: Optional[Sequence[str]] = None,
        learning_rate: float = 0.5,
        iterations: int = 120,
        l2: float = 1e-4,
        n_partitions: Optional[int] = None,
    ) -> None:
        self.database = database
        self.compute = compute
        self.collection = collection
        from repro.workloads.ddos import DDOS_FEATURES

        self.columns = list(columns or DDOS_FEATURES)
        self.learning_rate = learning_rate
        self.iterations = iterations
        self.l2 = l2
        self.n_partitions = n_partitions
        self.beta: Optional[np.ndarray] = None
        self.intercept: float = 0.0
        self._minima: Optional[np.ndarray] = None
        self._span: Optional[np.ndarray] = None
        self.train_report = None

    def _partitions(self) -> int:
        return self.n_partitions or max(1, self.compute.n_workers * 2)

    def _prepare(
        self, documents: List[Dict[str, Any]]
    ) -> Tuple[PartitionedDataset, np.ndarray, np.ndarray]:
        matrix, labels = documents_to_matrix(documents, self.columns, "label")
        if labels is None:
            raise RawJobError("logistic training requires labels")
        dataset = PartitionedDataset.from_matrix(
            matrix, self._partitions(), labels=labels
        )
        return dataset, matrix, labels

    def train(
        self,
        start: float,
        end: float,
        documents: Optional[List[Dict[str, Any]]] = None,
    ) -> None:
        if documents is None:
            documents = fetch_documents(
                self.database, self.collection, "flow", start, end
            )
        dataset, matrix, labels = self._prepare(documents)
        plain = PartitionedDataset.from_matrix(matrix, self._partitions())
        minima, maxima, _ = compute_global_minmax(self.compute, plain)
        span = maxima - minima
        span[span == 0] = 1.0
        self._minima, self._span = minima, span
        scaled = dataset.map_partitions(
            lambda part: ((part[0] - minima) / span, part[1])
        )
        n_total = matrix.shape[0]
        d = matrix.shape[1]
        lr, l2 = self.learning_rate, self.l2

        def map_fn(partition, state):
            return logistic_partition_gradient(partition, state)

        def reduce_fn(partials, state):
            beta, intercept = state
            gradient = sum(p[0] for p in partials) / n_total + l2 * beta
            intercept_grad = sum(p[1] for p in partials) / n_total
            return beta - lr * gradient, intercept - lr * intercept_grad

        self.train_report = self.compute.run_iterative(
            scaled,
            map_fn,
            reduce_fn,
            initial_state=(np.zeros(d), 0.0),
            rounds=self.iterations,
        )
        self.beta, self.intercept = self.train_report.result

    def validate(
        self,
        start: float,
        end: float,
        documents: Optional[List[Dict[str, Any]]] = None,
    ) -> RawValidationReport:
        if self.beta is None:
            raise RawJobError("train before validate")
        watch = Stopwatch()
        if documents is None:
            documents = fetch_documents(
                self.database, self.collection, "flow", start, end
            )
        matrix, labels = documents_to_matrix(documents, self.columns, "label")
        dataset = PartitionedDataset.from_matrix(matrix, self._partitions())
        minima, span = self._minima, self._span
        beta, intercept = self.beta, self.intercept

        def map_fn(partition):
            scaled = (partition - minima) / span
            return (logistic_sigmoid(scaled @ beta + intercept) >= 0.5).astype(float)

        job = self.compute.run_map(
            dataset,
            map_fn=map_fn,
            reduce_fn=lambda partials: np.concatenate(partials),
        )
        predictions = job.result
        return RawValidationReport(
            total=len(predictions),
            true_positives=int(((labels == 1) & (predictions == 1)).sum()),
            false_positives=int(((labels == 0) & (predictions == 1)).sum()),
            true_negatives=int(((labels == 0) & (predictions == 0)).sum()),
            false_negatives=int(((labels == 1) & (predictions == 0)).sum()),
            elapsed_seconds=watch.elapsed(),
            makespan_seconds=job.makespan_seconds,
        )


# ---------------------------------------------------------------------------
# SLoC accounting for Table VIII
# ---------------------------------------------------------------------------


def _count_source_lines(objects: Sequence[Any]) -> int:
    """Effective SLoC: non-blank, non-comment, non-docstring lines."""
    total = 0
    for obj in objects:
        source = inspect.getsource(obj)
        in_doc = False
        for line in source.splitlines():
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            if stripped.startswith(('"""', "'''")):
                if not (len(stripped) > 3 and stripped.endswith(('"""', "'''"))):
                    in_doc = not in_doc
                continue
            if in_doc:
                continue
            total += 1
    return total


def raw_kmeans_source_lines() -> int:
    """SLoC of everything the K-Means baseline needed to hand-write."""
    return _count_source_lines(
        [
            RawJobError,
            build_time_window_filter,
            fetch_documents,
            extract_value,
            documents_to_matrix,
            partition_minmax,
            merge_minmax,
            compute_global_minmax,
            normalise_partition,
            kmeans_init_centers,
            kmeans_assign,
            kmeans_partition_stats,
            kmeans_merge_stats,
            RawValidationReport,
            RawDDoSKMeansJob,
        ]
    )


def raw_logistic_source_lines() -> int:
    """SLoC of everything the logistic baseline needed to hand-write."""
    return _count_source_lines(
        [
            RawJobError,
            build_time_window_filter,
            fetch_documents,
            extract_value,
            documents_to_matrix,
            partition_minmax,
            merge_minmax,
            compute_global_minmax,
            logistic_sigmoid,
            logistic_partition_gradient,
            RawValidationReport,
            RawDDoSLogisticJob,
        ]
    )
