"""The distributed controller cluster.

Glues instances, mastership, the shared topology/host/flow-rule services and
a cluster-wide event bus together, mirroring how ONOS presents a logically
centralised but physically distributed control plane.  Events published on
any instance's local bus are re-published on the cluster bus tagged with the
originating instance, so network applications (forwarding, load balancer)
see the global view while Athena instances stay attached to their local
controller only.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.controller.events import (
    ControllerEvent,
    EventBus,
    FlowRemovedEvent,
    HostEvent,
    PacketInEvent,
)
from repro.controller.flowrules import FlowRuleService
from repro.controller.hosts import HostService
from repro.controller.instance import ControllerInstance
from repro.controller.mastership import MastershipService
from repro.controller.topology import TopologyService
from repro.dataplane.network import Network
from repro.errors import ControllerError
from repro.openflow.messages import OpenFlowMessage
from repro.types import Dpid


class ControllerCluster:
    """A set of controller instances jointly managing one data plane."""

    def __init__(
        self,
        network: Network,
        n_instances: int = 1,
        poll_interval: float = 5.0,
    ) -> None:
        if n_instances < 1:
            raise ControllerError("cluster needs at least one instance")
        self.network = network
        self.sim = network.sim
        self.bus = EventBus()
        self.topology = TopologyService()
        self.hosts = HostService(self.topology)
        self.mastership = MastershipService()
        self.flow_rules = FlowRuleService(self.send)
        self.instances: List[ControllerInstance] = [
            ControllerInstance(i, self.sim, poll_interval=poll_interval)
            for i in range(n_instances)
        ]
        #: Instances currently marked failed (failover skips them).
        self.down_instances: set = set()
        for instance in self.instances:
            self._bridge_bus(instance)

    def _bridge_bus(self, instance: ControllerInstance) -> None:
        instance.bus.subscribe(ControllerEvent, self._republish)

    def _republish(self, event: ControllerEvent) -> None:
        # Host learning happens centrally before apps see the packet.
        if isinstance(event, PacketInEvent):
            headers = event.message.headers
            mac = headers.get("eth_src")
            if headers.get("eth_type") == 0x88CC:
                mac = None  # LLDP probes are not host traffic
            if mac:
                location = self.hosts.learn(
                    mac,
                    headers.get("ip_src"),
                    event.dpid,
                    event.message.in_port,
                    event.time,
                )
                if location is not None:
                    self.bus.publish(
                        HostEvent(
                            instance_id=event.instance_id,
                            dpid=event.dpid,
                            time=event.time,
                            mac=mac,
                            ip=headers.get("ip_src"),
                            port=event.message.in_port,
                        )
                    )
        if isinstance(event, FlowRemovedEvent):
            self.flow_rules.on_flow_removed(
                event.dpid, event.message.match, event.message.priority
            )
        self.bus.publish(event)

    # -- lifecycle -----------------------------------------------------------

    def adopt_domains(self, domains: List[List[Dpid]]) -> None:
        """Assign each dpid list to one instance and connect the switches."""
        if len(domains) > len(self.instances):
            raise ControllerError(
                f"{len(domains)} domains but only {len(self.instances)} instances"
            )
        instance_ids = [i.instance_id for i in self.instances]
        for idx, domain in enumerate(domains):
            instance = self.instances[idx]
            standbys = [i for i in instance_ids if i != instance.instance_id]
            for dpid in domain:
                switch = self.network.switches.get(dpid)
                if switch is None:
                    raise ControllerError(f"unknown dpid in domain: {dpid}")
                instance.connect_switch(switch)
                self.mastership.assign(dpid, instance.instance_id, standbys)
        self.topology.sync_from_network(self.network)

    def adopt_all(self) -> None:
        """Single-domain convenience: instance 0 masters everything."""
        self.adopt_domains([list(self.network.switches)])

    def start(self, poll: bool = True, flow_expiry_interval: float = 1.0) -> None:
        """Arm periodic services (stats polling, flow expiry sweeps)."""
        self.network.start_flow_expiry(flow_expiry_interval)
        if poll:
            for instance in self.instances:
                instance.poller.start()

    # -- message routing -------------------------------------------------------

    def send(self, dpid: Dpid, msg: OpenFlowMessage) -> None:
        """Deliver a controller→switch message via the switch's master."""
        master_id = self.mastership.master_of(dpid)
        self.instance(master_id).send(dpid, msg)

    def instance(self, instance_id: int) -> ControllerInstance:
        for instance in self.instances:
            if instance.instance_id == instance_id:
                return instance
        raise ControllerError(f"no instance {instance_id}")

    def instance_of(self, dpid: Dpid) -> ControllerInstance:
        return self.instance(self.mastership.master_of(dpid))

    def fail_instance(self, instance_id: int) -> List[Dpid]:
        """Simulate an instance failure: all its switches fail over."""
        failed = self.instance(instance_id)
        self.down_instances.add(instance_id)
        moved: List[Dpid] = []
        for dpid in list(failed.switches):
            switch = failed.disconnect_switch(dpid)
            new_master = self.mastership.failover(
                dpid, exclude=self.down_instances
            )
            self.instance(new_master).connect_switch(switch)
            moved.append(dpid)
        return moved

    def recover_instance(self, instance_id: int) -> ControllerInstance:
        """Rejoin a failed instance as a standby for every switch.

        The instance does not reclaim mastership — as in ONOS, a
        recovered member waits for the next failover (or an explicit
        rebalance) before mastering devices again.
        """
        instance = self.instance(instance_id)
        self.down_instances.discard(instance_id)
        for dpid in self.network.switches:
            self.mastership.add_standby(dpid, instance_id)
        return instance

    def summary(self) -> Dict[str, int]:
        return {
            "instances": len(self.instances),
            "switches": self.topology.switch_count(),
            "links": self.topology.link_count(),
            "hosts": self.hosts.host_count(),
            "flow_rules": self.flow_rules.total_rules(),
        }
