"""Reactive shortest-path forwarding.

The default ONOS-like forwarding application: on a PACKET_IN it locates the
destination host, computes the weighted shortest path, installs per-flow
rules along the whole path (releasing the buffered packet on the origin
switch), and floods when the destination is still unknown.  The per-flow
entries it installs are the source of Athena's flow-granularity features.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.controller.apps import NetworkApp
from repro.controller.events import PacketInEvent
from repro.openflow.actions import ActionOutput
from repro.openflow.match import Match
from repro.openflow.messages import PacketOut
from repro.types import ConnectPoint, OFPP_FLOOD


class ReactiveForwarding(NetworkApp):
    """Install end-to-end per-flow paths reactively."""

    def __init__(
        self,
        app_id: str = "fwd",
        idle_timeout: float = 10.0,
        hard_timeout: float = 0.0,
        priority: int = 10,
    ) -> None:
        super().__init__(app_id)
        self.idle_timeout = idle_timeout
        self.hard_timeout = hard_timeout
        self.priority = priority
        self.flooded = 0
        self.paths_installed = 0

    def activate(self, cluster) -> None:
        super().activate(cluster)
        cluster.bus.subscribe(PacketInEvent, self._on_packet_in)

    def deactivate(self) -> None:
        if self.cluster is not None:
            self.cluster.bus.unsubscribe(PacketInEvent, self._on_packet_in)
        super().deactivate()

    @staticmethod
    def flow_match(headers: Dict[str, Any]) -> Match:
        """The match granularity installed per flow (L2-L4 5-tuple style)."""
        keep = (
            "eth_type",
            "eth_src",
            "eth_dst",
            "ip_src",
            "ip_dst",
            "ip_proto",
            "tcp_src",
            "tcp_dst",
        )
        return Match.from_dict(
            {k: headers[k] for k in keep if headers.get(k) is not None}
        )

    def _on_packet_in(self, event: PacketInEvent) -> None:
        if self.cluster is None or not self.enabled:
            return
        headers = event.message.headers
        if headers.get("eth_type") == 0x88CC:
            return  # LLDP probes belong to link discovery, not forwarding
        dst_mac = headers.get("eth_dst")
        location = self.cluster.hosts.locate_mac(dst_mac) if dst_mac else None
        if location is None and headers.get("ip_dst"):
            location = self.cluster.hosts.locate_ip(headers["ip_dst"])
        if location is None:
            self._flood(event)
            return
        path = self.cluster.topology.shortest_path(event.dpid, location.point.dpid)
        if path is None:
            self._flood(event)
            return
        self.install_path(
            path,
            final_port=location.point.port,
            match=self.flow_match(headers),
            event=event,
        )
        self.paths_installed += 1

    def install_path(self, path, final_port: int, match: Match, event: PacketInEvent) -> None:
        """Install the rule chain along ``path`` (origin switch last, with
        the buffer id, so the pending packet is forwarded on install)."""
        hops = []
        for idx, dpid in enumerate(path):
            if idx + 1 < len(path):
                out_port = self.cluster.topology.port_toward(dpid, path[idx + 1])
            else:
                out_port = final_port
            hops.append((dpid, out_port))
        # Downstream first so the released packet finds rules in place.
        for dpid, out_port in reversed(hops):
            buffer_id = (
                event.message.buffer_id
                if dpid == event.dpid and event.message.buffer_id >= 0
                else -1
            )
            self.cluster.flow_rules.install(
                dpid,
                match,
                [ActionOutput(port=out_port)],
                priority=self.priority,
                app_id=self.app_id,
                idle_timeout=self.idle_timeout,
                hard_timeout=self.hard_timeout,
                now=event.time,
                buffer_id=buffer_id,
            )
            self.rules_installed += 1

    def _flood(self, event: PacketInEvent) -> None:
        """Flood along the spanning tree (plus edge ports) to avoid storms."""
        self.flooded += 1
        topology = self.cluster.topology
        switch = self.cluster.network.switches.get(event.dpid)
        allowed = topology.spanning_tree_points()
        actions = []
        for port_no in sorted(switch.ports) if switch else []:
            if port_no == event.message.in_port:
                continue
            point = ConnectPoint(event.dpid, port_no)
            if topology.is_infrastructure_port(point) and point not in allowed:
                continue
            actions.append(ActionOutput(port=port_no))
        if switch is None:
            # No port knowledge (detached bench switches): raw flood.
            actions = [ActionOutput(port=OFPP_FLOOD)]
        # An empty action list silently drops: a leaf of the spanning tree
        # with no edge ports has nowhere left to flood.
        self.cluster.send(
            event.dpid,
            PacketOut(
                buffer_id=event.message.buffer_id,
                in_port=event.message.in_port,
                actions=actions,
                headers=dict(event.message.headers),
                total_len=event.message.total_len,
            ),
        )
