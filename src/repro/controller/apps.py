"""Network applications hosted on the controller cluster.

Besides the base class, this module implements the two applications the
NAE scenario (Section V-C) pits against each other:

* :class:`LoadBalancerApp` — spreads flows toward a set of servers across
  the available paths, installing rules with a *soft timeout* (the source of
  Figure 9's sawtooth), and
* :class:`SecurityRedirectApp` — forces protocol-matched traffic (FTP by
  default) through the switch hosting an inline security device, at higher
  priority, which is what starves the load balancer of forwarding control.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.controller.events import PacketInEvent
from repro.openflow.actions import ActionOutput
from repro.openflow.constants import IPPROTO_TCP
from repro.openflow.match import Match


class NetworkApp:
    """Base class: lifecycle plus rule accounting."""

    def __init__(self, app_id: str) -> None:
        self.app_id = app_id
        self.cluster = None
        self.enabled = False
        self.rules_installed = 0

    def activate(self, cluster) -> None:
        """Attach to a cluster and begin reacting to events."""
        self.cluster = cluster
        self.enabled = True

    def deactivate(self) -> None:
        """Stop reacting; installed rules are left to time out."""
        self.enabled = False

    def __repr__(self) -> str:
        return f"{type(self).__name__}(app_id={self.app_id!r}, enabled={self.enabled})"


class LoadBalancerApp(NetworkApp):
    """Round-robin path load balancing toward a server set.

    Only flows destined to ``server_ips`` are handled.  Rules carry an idle
    (soft) timeout, so when a flow pauses its rules expire and the next
    PACKET_IN re-balances it — producing the sawtooth packet-count pattern
    the paper observes.
    """

    def __init__(
        self,
        server_ips: Sequence[str],
        app_id: str = "lb",
        priority: int = 20,
        idle_timeout: float = 5.0,
    ) -> None:
        super().__init__(app_id)
        self.server_ips = set(server_ips)
        self.priority = priority
        self.idle_timeout = idle_timeout
        self._rr_counter = 0

    def activate(self, cluster) -> None:
        super().activate(cluster)
        cluster.bus.subscribe(PacketInEvent, self._on_packet_in)

    def deactivate(self) -> None:
        if self.cluster is not None:
            self.cluster.bus.unsubscribe(PacketInEvent, self._on_packet_in)
        super().deactivate()

    def _on_packet_in(self, event: PacketInEvent) -> None:
        if not self.enabled or self.cluster is None:
            return
        headers = event.message.headers
        ip_dst = headers.get("ip_dst")
        # Balance traffic to the servers and the return traffic from them.
        if ip_dst not in self.server_ips and headers.get("ip_src") not in self.server_ips:
            return
        location = self.cluster.hosts.locate_ip(ip_dst) if ip_dst else None
        if location is None:
            return
        paths = self.cluster.topology.all_simple_paths(
            event.dpid, location.point.dpid, cutoff=6
        )
        if not paths:
            return
        paths.sort(key=lambda p: (len(p), p))
        path = paths[self._rr_counter % len(paths)]
        self._rr_counter += 1
        self._install_path(path, location.point.port, headers, event)

    def _install_path(
        self, path: List[int], final_port: int, headers: Dict[str, Any], event: PacketInEvent
    ) -> None:
        from repro.controller.forwarding import ReactiveForwarding

        match = ReactiveForwarding.flow_match(headers)
        hops = []
        for idx, dpid in enumerate(path):
            if idx + 1 < len(path):
                out_port = self.cluster.topology.port_toward(dpid, path[idx + 1])
            else:
                out_port = final_port
            hops.append((dpid, out_port))
        for dpid, out_port in reversed(hops):
            buffer_id = (
                event.message.buffer_id
                if dpid == event.dpid and event.message.buffer_id >= 0
                else -1
            )
            self.cluster.flow_rules.install(
                dpid,
                match,
                [ActionOutput(port=out_port)],
                priority=self.priority,
                app_id=self.app_id,
                idle_timeout=self.idle_timeout,
                now=event.time,
                buffer_id=buffer_id,
            )
            self.rules_installed += 1


class SecurityRedirectApp(NetworkApp):
    """Route protocol-matched traffic through an inline security device.

    All flows whose L4 destination port is in ``inspect_ports`` are pinned
    to a path that traverses ``security_dpid`` before reaching the server,
    installed at a priority above the load balancer so its rules win on
    conflict — the exact NAE setup of Figure 8.
    """

    def __init__(
        self,
        security_dpid: int,
        inspect_ports: Sequence[int] = (20, 21),
        app_id: str = "security",
        priority: int = 30,
        idle_timeout: float = 0.0,
    ) -> None:
        super().__init__(app_id)
        self.security_dpid = security_dpid
        self.inspect_ports = set(inspect_ports)
        self.priority = priority
        self.idle_timeout = idle_timeout

    def activate(self, cluster) -> None:
        super().activate(cluster)
        cluster.bus.subscribe(PacketInEvent, self._on_packet_in)

    def deactivate(self) -> None:
        if self.cluster is not None:
            self.cluster.bus.unsubscribe(PacketInEvent, self._on_packet_in)
        super().deactivate()

    def _wants(self, headers: Dict[str, Any]) -> bool:
        # Both directions of an inspected protocol traverse the device.
        return headers.get("ip_proto") == IPPROTO_TCP and (
            headers.get("tcp_dst") in self.inspect_ports
            or headers.get("tcp_src") in self.inspect_ports
        )

    def _on_packet_in(self, event: PacketInEvent) -> None:
        if not self.enabled or self.cluster is None:
            return
        headers = event.message.headers
        if not self._wants(headers):
            return
        ip_dst = headers.get("ip_dst")
        location = self.cluster.hosts.locate_ip(ip_dst) if ip_dst else None
        if location is None:
            return
        topo = self.cluster.topology
        to_security = topo.shortest_path(event.dpid, self.security_dpid)
        onward = topo.shortest_path(self.security_dpid, location.point.dpid)
        if to_security is None or onward is None:
            return
        path = to_security + onward[1:]
        self._install_path(path, location.point.port, headers, event)

    def _install_path(
        self, path: List[int], final_port: int, headers: Dict[str, Any], event: PacketInEvent
    ) -> None:
        from repro.controller.forwarding import ReactiveForwarding

        match = ReactiveForwarding.flow_match(headers)
        hops = []
        seen = set()
        for idx, dpid in enumerate(path):
            if idx + 1 < len(path):
                out_port = self.cluster.topology.port_toward(dpid, path[idx + 1])
            else:
                out_port = final_port
            # A path that revisits a switch keeps only the last hop decision.
            if dpid in seen:
                hops = [(d, p) for d, p in hops if d != dpid]
            seen.add(dpid)
            hops.append((dpid, out_port))
        for dpid, out_port in reversed(hops):
            buffer_id = (
                event.message.buffer_id
                if dpid == event.dpid and event.message.buffer_id >= 0
                else -1
            )
            self.cluster.flow_rules.install(
                dpid,
                match,
                [ActionOutput(port=out_port)],
                priority=self.priority,
                app_id=self.app_id,
                idle_timeout=self.idle_timeout,
                now=event.time,
                buffer_id=buffer_id,
            )
            self.rules_installed += 1
