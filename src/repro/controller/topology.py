"""Cluster-wide topology service.

Maintains a networkx graph of switches and the port mappings between
adjacent ones, answers shortest-path queries for the forwarding apps, and
distinguishes infrastructure ports (switch-switch) from edge ports
(host-facing) — the distinction host learning depends on.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

import networkx as nx

from repro.dataplane.network import Network
from repro.errors import ControllerError
from repro.types import ConnectPoint, Dpid


class TopologyService:
    """Graph view of the data plane shared by all controller instances."""

    def __init__(self) -> None:
        self.graph = nx.Graph()
        #: (dpid_a, dpid_b) -> (port on a toward b, port on b toward a)
        self._ports: Dict[Tuple[Dpid, Dpid], Tuple[int, int]] = {}
        self._infrastructure: Set[ConnectPoint] = set()
        self._st_cache: Optional[Set[ConnectPoint]] = None

    def sync_from_network(self, network: Network) -> None:
        """Discover the full topology (stands in for LLDP discovery)."""
        self.graph.clear()
        self._ports.clear()
        self._infrastructure.clear()
        self._st_cache = None
        for dpid in network.switches:
            self.graph.add_node(dpid)
        for point_a, point_b in network.switch_links():
            self.add_link(point_a, point_b)

    def add_link(self, a: ConnectPoint, b: ConnectPoint, weight: float = 1.0) -> None:
        self.graph.add_edge(a.dpid, b.dpid, weight=weight)
        self._ports[(a.dpid, b.dpid)] = (a.port, b.port)
        self._ports[(b.dpid, a.dpid)] = (b.port, a.port)
        self._infrastructure.add(a)
        self._infrastructure.add(b)
        self._st_cache = None

    def remove_link(self, a_dpid: Dpid, b_dpid: Dpid) -> None:
        if self.graph.has_edge(a_dpid, b_dpid):
            self.graph.remove_edge(a_dpid, b_dpid)
        ports = self._ports.pop((a_dpid, b_dpid), None)
        reverse = self._ports.pop((b_dpid, a_dpid), None)
        if ports:
            self._infrastructure.discard(ConnectPoint(a_dpid, ports[0]))
        if reverse:
            self._infrastructure.discard(ConnectPoint(b_dpid, reverse[0]))
        self._st_cache = None

    def set_link_weight(self, a_dpid: Dpid, b_dpid: Dpid, weight: float) -> None:
        """Adjust the routing weight of a link (used by traffic engineering)."""
        if not self.graph.has_edge(a_dpid, b_dpid):
            raise ControllerError(f"no link {a_dpid}<->{b_dpid}")
        self.graph[a_dpid][b_dpid]["weight"] = weight
        self._st_cache = None

    def is_infrastructure_port(self, point: ConnectPoint) -> bool:
        """True if the port carries a switch-to-switch link."""
        return point in self._infrastructure

    def port_toward(self, from_dpid: Dpid, to_dpid: Dpid) -> int:
        """The egress port on ``from_dpid`` reaching adjacent ``to_dpid``."""
        ports = self._ports.get((from_dpid, to_dpid))
        if ports is None:
            raise ControllerError(f"switches not adjacent: {from_dpid}, {to_dpid}")
        return ports[0]

    def shortest_path(self, src: Dpid, dst: Dpid) -> Optional[List[Dpid]]:
        """Weighted shortest dpid path, or None if disconnected."""
        if src == dst:
            return [src]
        try:
            return nx.shortest_path(self.graph, src, dst, weight="weight")
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            return None

    def all_shortest_paths(self, src: Dpid, dst: Dpid) -> List[List[Dpid]]:
        """Every equal-cost shortest path (load balancer input)."""
        if src == dst:
            return [[src]]
        try:
            return list(nx.all_shortest_paths(self.graph, src, dst, weight="weight"))
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            return []

    def all_simple_paths(self, src: Dpid, dst: Dpid, cutoff: int = 8) -> List[List[Dpid]]:
        """Simple paths up to ``cutoff`` hops (flow-migration candidates)."""
        try:
            return list(nx.all_simple_paths(self.graph, src, dst, cutoff=cutoff))
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            return []

    def spanning_tree_points(self) -> Set[ConnectPoint]:
        """Connect-points on a spanning tree of the topology.

        Flooding is restricted to these infrastructure ports (plus all edge
        ports), which prevents broadcast storms in cyclic topologies — the
        same role ONOS's spanning-tree-based broadcast suppression plays.
        """
        if self._st_cache is not None:
            return self._st_cache
        allowed: Set[ConnectPoint] = set()
        tree = nx.minimum_spanning_tree(self.graph, weight="weight")
        for a_dpid, b_dpid in tree.edges():
            ports = self._ports.get((a_dpid, b_dpid))
            if ports is None:
                continue
            allowed.add(ConnectPoint(a_dpid, ports[0]))
            allowed.add(ConnectPoint(b_dpid, ports[1]))
        self._st_cache = allowed
        return allowed

    def degree(self, dpid: Dpid) -> int:
        return int(self.graph.degree(dpid)) if dpid in self.graph else 0

    def link_count(self) -> int:
        return self.graph.number_of_edges()

    def switch_count(self) -> int:
        return self.graph.number_of_nodes()
