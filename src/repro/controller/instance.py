"""A single controller instance.

Each instance owns the control channels to the switches it masters,
dispatches their messages onto its local event bus, and exposes the two
hook points Athena's integration needs:

* **message taps** — callbacks invoked for every OpenFlow message crossing
  the instance in either direction (the paper modifies
  ``OpenFlowController`` for this), and
* **proxy rule injection** — rule installation that goes through the
  instance's flow-rule bookkeeping so controller state stays consistent
  (the Athena Proxy requirement).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.controller.events import (
    EventBus,
    FlowRemovedEvent,
    MessageDirection,
    PacketInEvent,
    PortStatusEvent,
    StatsEvent,
)
from repro.controller.stats import ISSUER_ATHENA, StatsPoller
from repro.dataplane.switch import OpenFlowSwitch
from repro.errors import ControllerError
from repro.openflow.messages import (
    FlowRemoved,
    OpenFlowMessage,
    PacketIn,
    PortStatus,
    StatsReply,
)
from repro.simkernel import Simulator
from repro.telemetry import get_telemetry
from repro.types import Dpid

MessageTap = Callable[[OpenFlowMessage, MessageDirection, int], None]

#: Chaos channel filter: ``(dpid, msg, direction) -> verdict``.  ``None``
#: delivers normally; ``[]`` drops the message; ``[delay, ...]`` delivers
#: one copy per entry, each after its delay (0 = immediately) — so
#: ``[0.0, 0.0]`` duplicates and ``[0.05]`` delays.
FaultFilter = Callable[
    [Dpid, OpenFlowMessage, MessageDirection], Optional[List[float]]
]


class ControllerInstance:
    """One ONOS-like controller instance in the cluster."""

    def __init__(
        self,
        instance_id: int,
        sim: Simulator,
        poll_interval: float = 5.0,
    ) -> None:
        self.instance_id = instance_id
        self.sim = sim
        self.bus = EventBus()
        self.switches: Dict[Dpid, OpenFlowSwitch] = {}
        self.poller = StatsPoller(sim, self.send, interval=poll_interval)
        self._taps: List[MessageTap] = []
        self._fault_filter: Optional[FaultFilter] = None
        # Counters used by the Cbench and CPU-usage experiments.
        self.messages_from_switches = 0
        self.messages_to_switches = 0
        self.packet_ins_handled = 0
        # Telemetry: instruments are bound once here; when telemetry is
        # disabled these are shared null objects and the dispatch loop
        # pays only a no-op method call per message.
        registry = get_telemetry().registry
        messages = registry.counter(
            "athena_southbound_messages_total",
            "OpenFlow messages crossing the controller, by direction.",
            labelnames=("direction",),
        )
        self._metric_from_switch = messages.labels(direction="from_switch")
        self._metric_to_switch = messages.labels(direction="to_switch")
        self._metric_packet_in = registry.counter(
            "athena_southbound_packet_in_total",
            "PacketIn messages dispatched onto the event bus.",
        )
        self._metric_flow_removed = registry.counter(
            "athena_southbound_flow_removed_total",
            "FlowRemoved messages dispatched onto the event bus.",
        )
        self._metric_stats_replies = registry.counter(
            "athena_southbound_stats_replies_total",
            "StatsReply messages dispatched onto the event bus.",
        )
        faults = registry.counter(
            "athena_chaos_southbound_total",
            "Southbound messages affected by injected channel faults.",
            labelnames=("action",),
        )
        self._metric_fault_dropped = faults.labels(action="dropped")
        self._metric_fault_delayed = faults.labels(action="delayed")
        self._metric_fault_duplicated = faults.labels(action="duplicated")
        self._metric_fault_expired = faults.labels(action="expired")

    # -- wiring ------------------------------------------------------------

    def connect_switch(self, switch: OpenFlowSwitch) -> None:
        """Take mastership of a switch's control channel."""
        if switch.dpid in self.switches:
            raise ControllerError(
                f"instance {self.instance_id} already masters {switch.name}"
            )
        self.switches[switch.dpid] = switch
        switch.connect_controller(self._on_switch_message)
        self.poller.manage(switch.dpid)

    def disconnect_switch(self, dpid: Dpid) -> Optional[OpenFlowSwitch]:
        switch = self.switches.pop(dpid, None)
        if switch is not None:
            self.poller.unmanage(dpid)
        return switch

    def add_message_tap(self, tap: MessageTap) -> None:
        """Register an Athena southbound tap (both message directions)."""
        self._taps.append(tap)

    def remove_message_tap(self, tap: MessageTap) -> None:
        if tap in self._taps:
            self._taps.remove(tap)

    def set_fault_filter(self, fault_filter: Optional[FaultFilter]) -> None:
        """Install (or clear, with ``None``) the chaos channel filter.

        The filter models the control channel between this instance and
        its switches: it sees every message after the controller-side taps
        and decides whether the channel drops, delays, or duplicates it.
        """
        self._fault_filter = fault_filter

    # -- message paths -------------------------------------------------------

    def send(self, dpid: Dpid, msg: OpenFlowMessage) -> None:
        """Controller → switch delivery (synchronous control channel)."""
        switch = self.switches.get(dpid)
        if switch is None:
            raise ControllerError(
                f"instance {self.instance_id} does not master dpid {dpid}"
            )
        msg.dpid = dpid
        self.messages_to_switches += 1
        self._metric_to_switch.inc()
        for tap in self._taps:
            tap(msg, MessageDirection.TO_SWITCH, self.instance_id)
        verdict = None
        if self._fault_filter is not None:
            verdict = self._fault_filter(dpid, msg, MessageDirection.TO_SWITCH)
        if verdict is None:
            switch.handle_message(msg, self.sim.now)
            return
        self._apply_verdict(
            verdict, lambda m=msg, d=dpid: self._deliver_to_switch(d, m)
        )

    def _deliver_to_switch(self, dpid: Dpid, msg: OpenFlowMessage) -> None:
        """Late channel delivery; mastership may have moved in flight."""
        switch = self.switches.get(dpid)
        if switch is None:
            self._metric_fault_expired.inc()
            return
        switch.handle_message(msg, self.sim.now)

    def _apply_verdict(
        self, verdict: List[float], deliver: Callable[[], None]
    ) -> None:
        """Execute a fault-filter verdict: drop, delay, or duplicate."""
        if not verdict:
            self._metric_fault_dropped.inc()
            return
        if len(verdict) > 1:
            self._metric_fault_duplicated.inc(len(verdict) - 1)
        for delay in verdict:
            if delay <= 0:
                deliver()
            else:
                self._metric_fault_delayed.inc()
                self.sim.after(delay, deliver)

    def mark_athena_xid(self, xid: int) -> None:
        """Expose the paper's XID-marking hook to the Athena proxy."""
        self.poller.mark_xid(xid, ISSUER_ATHENA)

    def _on_switch_message(self, msg: OpenFlowMessage) -> None:
        """Channel entry for switch → controller messages."""
        verdict = None
        if self._fault_filter is not None:
            verdict = self._fault_filter(
                msg.dpid, msg, MessageDirection.FROM_SWITCH
            )
        if verdict is None:
            self._process_switch_message(msg)
            return
        self._apply_verdict(
            verdict, lambda m=msg: self._process_switch_message(m)
        )

    def _process_switch_message(self, msg: OpenFlowMessage) -> None:
        """Switch → controller delivery: tap, then dispatch as events."""
        self.messages_from_switches += 1
        self._metric_from_switch.inc()
        for tap in self._taps:
            tap(msg, MessageDirection.FROM_SWITCH, self.instance_id)
        now = self.sim.now
        if isinstance(msg, PacketIn):
            self.packet_ins_handled += 1
            self._metric_packet_in.inc()
            self.bus.publish(
                PacketInEvent(
                    instance_id=self.instance_id,
                    dpid=msg.dpid,
                    time=now,
                    message=msg,
                )
            )
        elif isinstance(msg, FlowRemoved):
            self._metric_flow_removed.inc()
            self.bus.publish(
                FlowRemovedEvent(
                    instance_id=self.instance_id,
                    dpid=msg.dpid,
                    time=now,
                    message=msg,
                )
            )
        elif isinstance(msg, PortStatus):
            self.bus.publish(
                PortStatusEvent(
                    instance_id=self.instance_id,
                    dpid=msg.dpid,
                    time=now,
                    message=msg,
                )
            )
        elif isinstance(msg, StatsReply):
            self._metric_stats_replies.inc()
            issuer = self.poller.issuer_of(msg.xid)
            self.bus.publish(
                StatsEvent(
                    instance_id=self.instance_id,
                    dpid=msg.dpid,
                    time=now,
                    message=msg,
                    athena_marked=issuer == ISSUER_ATHENA,
                )
            )
        # Echo/Barrier/Features replies are absorbed silently.

    def owned_dpids(self) -> List[Dpid]:
        return sorted(self.switches)

    def __repr__(self) -> str:
        return (
            f"ControllerInstance(id={self.instance_id}, "
            f"switches={sorted(self.switches)})"
        )
