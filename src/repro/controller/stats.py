"""The statistics poller.

ONOS polls its devices for flow and port statistics as part of normal
management; Athena additionally issues its own statistics requests and marks
their XIDs so variation features are computed only over samples *it*
requested (the paper modifies ``OpenFlowDeviceProvider`` for exactly this).
The poller therefore keeps a registry of outstanding XIDs and who issued
them; the controller instance consults it when a reply arrives.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set

from repro.openflow.match import Match
from repro.openflow.messages import (
    FlowStatsRequest,
    OpenFlowMessage,
    PortStatsRequest,
)
from repro.simkernel import Simulator
from repro.types import Dpid

SendFn = Callable[[Dpid, OpenFlowMessage], None]

#: Issuer tags.
ISSUER_CONTROLLER = "controller"
ISSUER_ATHENA = "athena"


class StatsPoller:
    """Periodic flow/port statistics polling with XID attribution."""

    def __init__(self, sim: Simulator, send: SendFn, interval: float = 5.0) -> None:
        self._sim = sim
        self._send = send
        self.interval = interval
        self._switches: List[Dpid] = []
        self._issuers: Dict[int, str] = {}
        self._armed = False
        self.polls_issued = 0

    def manage(self, dpid: Dpid) -> None:
        if dpid not in self._switches:
            self._switches.append(dpid)

    def unmanage(self, dpid: Dpid) -> None:
        if dpid in self._switches:
            self._switches.remove(dpid)

    def start(self) -> None:
        """Arm the periodic background poll (the controller's own polling)."""
        if self._armed:
            return
        self._armed = True
        self._sim.every(self.interval, self.poll_once)

    def poll_once(self, issuer: str = ISSUER_CONTROLLER, switches: Optional[List[Dpid]] = None) -> List[int]:
        """Issue one round of flow+port stats requests; returns the XIDs."""
        xids: List[int] = []
        for dpid in switches if switches is not None else self._switches:
            flow_req = FlowStatsRequest(match=Match())
            port_req = PortStatsRequest(port_no=None)
            for request in (flow_req, port_req):
                self._issuers[request.xid] = issuer
                xids.append(request.xid)
                self._send(dpid, request)
            self.polls_issued += 1
        return xids

    def mark_xid(self, xid: int, issuer: str = ISSUER_ATHENA) -> None:
        """Record an externally issued request (the Athena proxy path)."""
        self._issuers[xid] = issuer

    def issuer_of(self, xid: int) -> Optional[str]:
        """Look up (and consume) the issuer of a reply's XID."""
        return self._issuers.pop(xid, None)

    def outstanding(self) -> int:
        return len(self._issuers)
