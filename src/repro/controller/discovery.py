"""LLDP-based link discovery.

ONOS discovers the topology by emitting LLDP frames out of every switch
port and observing where they re-enter the control plane.  The default
:class:`~repro.controller.cluster.ControllerCluster` setup syncs topology
omnisciently from the network object (cheap and exact for benches); this
service provides the faithful alternative: probe frames carry the origin
``(dpid, port)`` in their headers, neighbouring switches punt them as table
misses, and each punt proves one unidirectional link.

Usage::

    discovery = LinkDiscoveryService(cluster)
    discovery.start(interval=5.0)      # periodic probing, or
    discovery.probe_all()              # one round
    network.sim.run(until=...)         # let the frames fly
"""

from __future__ import annotations

from typing import Optional, Set, Tuple

from repro.controller.events import PacketInEvent
from repro.openflow.actions import ActionOutput
from repro.openflow.constants import ETH_TYPE_LLDP
from repro.openflow.messages import PacketOut
from repro.types import ConnectPoint

#: Destination MAC reserved for LLDP (01:80:c2:00:00:0e in the spec).
LLDP_DST_MAC = "01:80:c2:00:00:0e"


class LinkDiscoveryService:
    """Discovers switch-to-switch links by LLDP probing."""

    def __init__(self, cluster) -> None:
        self.cluster = cluster
        self.probes_sent = 0
        self.links_discovered = 0
        self._seen: Set[Tuple[ConnectPoint, ConnectPoint]] = set()
        self._started = False
        cluster.bus.subscribe(PacketInEvent, self._on_packet_in)

    # -- probing ----------------------------------------------------------

    def probe_switch(self, dpid: int) -> int:
        """Emit one LLDP frame out of every port of one switch."""
        switch = self.cluster.network.switches.get(dpid)
        if switch is None:
            return 0
        sent = 0
        for port_no in sorted(switch.ports):
            headers = {
                "eth_src": "0e:00:00:00:00:01",
                "eth_dst": LLDP_DST_MAC,
                "eth_type": ETH_TYPE_LLDP,
                "lldp_dpid": dpid,
                "lldp_port": port_no,
            }
            self.cluster.send(
                dpid,
                PacketOut(
                    buffer_id=-1,
                    in_port=0,
                    actions=[ActionOutput(port=port_no)],
                    headers=headers,
                    total_len=64,
                ),
            )
            sent += 1
        self.probes_sent += sent
        return sent

    def probe_all(self) -> int:
        """One probing round over every switch in the data plane."""
        return sum(
            self.probe_switch(dpid) for dpid in self.cluster.network.switches
        )

    def start(self, interval: float = 5.0) -> None:
        """Arm periodic probing on the simulator."""
        if self._started:
            return
        self._started = True
        sim = self.cluster.sim
        # First round immediately (well, next tick), then periodically.
        sim.after(0.0, self.probe_all)
        sim.every(interval, self.probe_all)

    # -- reception ------------------------------------------------------------

    def _on_packet_in(self, event: PacketInEvent) -> None:
        headers = event.message.headers
        if headers.get("eth_type") != ETH_TYPE_LLDP:
            return
        origin_dpid = headers.get("lldp_dpid")
        origin_port = headers.get("lldp_port")
        if origin_dpid is None or origin_port is None:
            return
        origin = ConnectPoint(int(origin_dpid), int(origin_port))
        arrival = ConnectPoint(event.dpid, event.message.in_port)
        key = (origin, arrival) if origin < arrival else (arrival, origin)
        if key in self._seen:
            return
        self._seen.add(key)
        self.links_discovered += 1
        self.cluster.topology.add_link(origin, arrival)

    def discovered_link_count(self) -> int:
        return len(self._seen)
