"""The FlowRule subsystem.

Tracks every rule the control plane believes is installed, attributed to the
application that requested it — the paper's Athena prototype leverages
exactly this subsystem to extract per-application flow information for the
NAE scenario.  Installation goes through a send function supplied by the
cluster so rules always reach a switch via its master instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.openflow.actions import Action
from repro.openflow.constants import FlowModCommand
from repro.openflow.match import Match
from repro.openflow.messages import FlowMod, OpenFlowMessage
from repro.types import Dpid

SendFn = Callable[[Dpid, OpenFlowMessage], None]


@dataclass
class FlowRuleRecord:
    """Control-plane record of an installed rule."""

    dpid: Dpid
    match: Match
    priority: int
    actions: List[Action]
    app_id: str
    idle_timeout: float = 0.0
    hard_timeout: float = 0.0
    installed_at: float = 0.0
    cookie: int = 0


class FlowRuleService:
    """Cluster-wide rule bookkeeping with per-application attribution."""

    def __init__(self, send: SendFn) -> None:
        self._send = send
        self._rules: Dict[Dpid, List[FlowRuleRecord]] = {}
        self._cookie_counter = 1
        self.installed_count = 0
        self.removed_count = 0

    def install(
        self,
        dpid: Dpid,
        match: Match,
        actions: List[Action],
        priority: int = 10,
        app_id: str = "default",
        idle_timeout: float = 0.0,
        hard_timeout: float = 0.0,
        now: float = 0.0,
        buffer_id: int = -1,
    ) -> FlowRuleRecord:
        """Install a rule on ``dpid`` and record it."""
        cookie = self._cookie_counter
        self._cookie_counter += 1
        record = FlowRuleRecord(
            dpid=dpid,
            match=match,
            priority=priority,
            actions=list(actions),
            app_id=app_id,
            idle_timeout=idle_timeout,
            hard_timeout=hard_timeout,
            installed_at=now,
            cookie=cookie,
        )
        self._rules.setdefault(dpid, []).append(record)
        self.installed_count += 1
        self._send(
            dpid,
            FlowMod(
                command=FlowModCommand.ADD,
                match=match,
                priority=priority,
                actions=list(actions),
                idle_timeout=idle_timeout,
                hard_timeout=hard_timeout,
                cookie=cookie,
                app_id=app_id,
                buffer_id=buffer_id,
            ),
        )
        return record

    def remove(
        self,
        dpid: Dpid,
        match: Match,
        priority: Optional[int] = None,
        app_id: Optional[str] = None,
    ) -> int:
        """Remove matching rules from the switch and the bookkeeping."""
        kept: List[FlowRuleRecord] = []
        removed = 0
        for record in self._rules.get(dpid, []):
            hit = record.match == match and (
                priority is None or record.priority == priority
            )
            if hit and app_id is not None:
                hit = record.app_id == app_id
            if hit:
                removed += 1
            else:
                kept.append(record)
        self._rules[dpid] = kept
        self.removed_count += removed
        if removed:
            self._send(
                dpid,
                FlowMod(
                    command=FlowModCommand.DELETE_STRICT
                    if priority is not None
                    else FlowModCommand.DELETE,
                    match=match,
                    priority=priority or 0,
                ),
            )
        return removed

    def remove_by_app(self, app_id: str) -> int:
        """Withdraw every rule an application installed (app shutdown)."""
        removed = 0
        for dpid in list(self._rules):
            for record in [r for r in self._rules[dpid] if r.app_id == app_id]:
                removed += self.remove(
                    dpid, record.match, record.priority, app_id=app_id
                )
        return removed

    def on_flow_removed(self, dpid: Dpid, match: Match, priority: int) -> None:
        """Sync bookkeeping when the data plane reports an eviction."""
        rules = self._rules.get(dpid, [])
        self._rules[dpid] = [
            r for r in rules if not (r.match == match and r.priority == priority)
        ]

    def rules_of(self, dpid: Dpid, app_id: Optional[str] = None) -> List[FlowRuleRecord]:
        rules = list(self._rules.get(dpid, []))
        if app_id is not None:
            rules = [r for r in rules if r.app_id == app_id]
        return rules

    def app_of_flow(self, dpid: Dpid, match: Match) -> Optional[str]:
        """Attribute a data-plane flow to the app that installed it.

        Exact match first; otherwise the most specific covering rule wins —
        mirroring how Athena extracts application information per flow.
        """
        best: Optional[FlowRuleRecord] = None
        for record in self._rules.get(dpid, []):
            if record.match == match:
                return record.app_id
            if match.is_subset_of(record.match):
                if best is None or record.match.specificity() > best.match.specificity():
                    best = record
        return best.app_id if best else None

    def total_rules(self) -> int:
        return sum(len(rules) for rules in self._rules.values())
