"""Switch mastership across controller instances.

In ONOS each device has exactly one master instance; other instances may
hold standby roles.  Athena instances monitor only the switches their local
controller masters, which is what makes the framework's feature collection
fully distributed.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import ControllerError
from repro.types import Dpid


class MastershipService:
    """Tracks which controller instance masters each switch."""

    def __init__(self) -> None:
        self._master: Dict[Dpid, int] = {}
        self._standbys: Dict[Dpid, List[int]] = {}

    def assign(self, dpid: Dpid, instance_id: int, standbys: Optional[List[int]] = None) -> None:
        self._master[dpid] = instance_id
        self._standbys[dpid] = list(standbys or [])

    def master_of(self, dpid: Dpid) -> int:
        master = self._master.get(dpid)
        if master is None:
            raise ControllerError(f"no master assigned for dpid {dpid}")
        return master

    def is_master(self, instance_id: int, dpid: Dpid) -> bool:
        return self._master.get(dpid) == instance_id

    def switches_of(self, instance_id: int) -> List[Dpid]:
        return sorted(d for d, m in self._master.items() if m == instance_id)

    def add_standby(self, dpid: Dpid, instance_id: int) -> None:
        """Register an instance as a failover candidate for a switch.

        Used when a failed instance rejoins the cluster: it becomes
        eligible again without disturbing the current master.  No-op if
        the instance already masters or stands by for the switch.
        """
        if self._master.get(dpid) == instance_id:
            return
        standbys = self._standbys.setdefault(dpid, [])
        if instance_id not in standbys:
            standbys.append(instance_id)

    def standbys_of(self, dpid: Dpid) -> List[int]:
        return list(self._standbys.get(dpid, []))

    def failover(self, dpid: Dpid, exclude: Optional[set] = None) -> int:
        """Promote the first eligible standby to master.

        ``exclude`` names instances that must not be promoted (instances
        the cluster knows are down), mirroring how a real mastership store
        only elects reachable members.
        """
        standbys = self._standbys.get(dpid, [])
        candidates = [
            s for s in standbys if exclude is None or s not in exclude
        ]
        if not candidates:
            raise ControllerError(f"no standby available for dpid {dpid}")
        new_master = candidates[0]
        standbys.remove(new_master)
        old = self._master.get(dpid)
        if old is not None:
            standbys.append(old)
        self._master[dpid] = new_master
        return new_master

    def instance_count(self) -> int:
        return len(set(self._master.values()))
