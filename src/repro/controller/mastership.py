"""Switch mastership across controller instances.

In ONOS each device has exactly one master instance; other instances may
hold standby roles.  Athena instances monitor only the switches their local
controller masters, which is what makes the framework's feature collection
fully distributed.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import ControllerError
from repro.types import Dpid


class MastershipService:
    """Tracks which controller instance masters each switch."""

    def __init__(self) -> None:
        self._master: Dict[Dpid, int] = {}
        self._standbys: Dict[Dpid, List[int]] = {}

    def assign(self, dpid: Dpid, instance_id: int, standbys: Optional[List[int]] = None) -> None:
        self._master[dpid] = instance_id
        self._standbys[dpid] = list(standbys or [])

    def master_of(self, dpid: Dpid) -> int:
        master = self._master.get(dpid)
        if master is None:
            raise ControllerError(f"no master assigned for dpid {dpid}")
        return master

    def is_master(self, instance_id: int, dpid: Dpid) -> bool:
        return self._master.get(dpid) == instance_id

    def switches_of(self, instance_id: int) -> List[Dpid]:
        return sorted(d for d, m in self._master.items() if m == instance_id)

    def failover(self, dpid: Dpid) -> int:
        """Promote the first standby to master (instance failure handling)."""
        standbys = self._standbys.get(dpid, [])
        if not standbys:
            raise ControllerError(f"no standby available for dpid {dpid}")
        new_master = standbys.pop(0)
        old = self._master.get(dpid)
        if old is not None:
            standbys.append(old)
        self._master[dpid] = new_master
        return new_master

    def instance_count(self) -> int:
        return len(set(self._master.values()))
