"""A distributed SDN controller modeled on ONOS.

The paper integrates Athena into ONOS 1.6 as a subsystem, hooking the
OpenFlow controller I/O path and the FlowRule subsystem.  This package
provides the equivalent substrate: per-instance controllers with mastership
over switch subsets, a cluster-wide topology view, host tracking, a flow-rule
subsystem with per-application attribution, a statistics poller that marks
request XIDs, and standard network applications (reactive forwarding, load
balancing, security redirection) used by the NAE scenario.
"""

from repro.controller.cluster import ControllerCluster
from repro.controller.events import (
    ControllerEvent,
    EventBus,
    FlowRemovedEvent,
    HostEvent,
    MessageDirection,
    PacketInEvent,
    PortStatusEvent,
    StatsEvent,
)
from repro.controller.discovery import LinkDiscoveryService
from repro.controller.instance import ControllerInstance
from repro.controller.apps import LoadBalancerApp, NetworkApp, SecurityRedirectApp
from repro.controller.forwarding import ReactiveForwarding

__all__ = [
    "ControllerCluster",
    "ControllerEvent",
    "EventBus",
    "FlowRemovedEvent",
    "HostEvent",
    "MessageDirection",
    "PacketInEvent",
    "PortStatusEvent",
    "StatsEvent",
    "ControllerInstance",
    "LinkDiscoveryService",
    "LoadBalancerApp",
    "NetworkApp",
    "SecurityRedirectApp",
    "ReactiveForwarding",
]
