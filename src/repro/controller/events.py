"""Controller event bus and event types.

Controller subsystems and applications communicate through a synchronous
publish/subscribe bus, mirroring ONOS's event dispatch.  Athena's southbound
interface subscribes to the same bus (plus raw message taps) to observe
control-plane behaviour without modifying the subsystems themselves.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, DefaultDict, List, Optional, Type

from repro.openflow.messages import (
    FlowRemoved,
    OpenFlowMessage,
    PacketIn,
    PortStatus,
    StatsReply,
)


class MessageDirection(Enum):
    """Direction of an OpenFlow message relative to the controller."""

    FROM_SWITCH = "from_switch"
    TO_SWITCH = "to_switch"


@dataclass
class ControllerEvent:
    """Base event: where and when it happened."""

    instance_id: int = 0
    dpid: int = 0
    time: float = 0.0


@dataclass
class PacketInEvent(ControllerEvent):
    message: PacketIn = None  # type: ignore[assignment]


@dataclass
class FlowRemovedEvent(ControllerEvent):
    message: FlowRemoved = None  # type: ignore[assignment]


@dataclass
class PortStatusEvent(ControllerEvent):
    message: PortStatus = None  # type: ignore[assignment]


@dataclass
class StatsEvent(ControllerEvent):
    """A statistics reply, tagged with whether Athena's poller requested it."""

    message: StatsReply = None  # type: ignore[assignment]
    athena_marked: bool = False


@dataclass
class HostEvent(ControllerEvent):
    """A host was discovered or moved."""

    mac: str = ""
    ip: Optional[str] = None
    port: int = 0


@dataclass
class TopologyEvent(ControllerEvent):
    """A link or switch changed state."""

    kind: str = "link"
    up: bool = True
    port: int = 0


class EventBus:
    """Synchronous type-keyed publish/subscribe dispatcher."""

    def __init__(self) -> None:
        self._listeners: DefaultDict[type, List[Callable]] = defaultdict(list)

    def subscribe(self, event_type: Type[ControllerEvent], listener: Callable) -> None:
        # Idempotent: subscribing the same listener twice (e.g. both a
        # controller instance and an app wiring up the same handler) must
        # not double its deliveries.
        listeners = self._listeners[event_type]
        if listener not in listeners:
            listeners.append(listener)

    def unsubscribe(self, event_type: Type[ControllerEvent], listener: Callable) -> None:
        if listener in self._listeners.get(event_type, []):
            self._listeners[event_type].remove(listener)

    def publish(self, event: ControllerEvent) -> None:
        # Walk the event's class hierarchy so base-type subscriptions see
        # derived events, but deliver to each listener at most once even
        # if it subscribed at several levels (concrete + base type).
        # Equality, not identity: bound methods are re-created per access,
        # so ``instance.handler`` subscribed twice compares == but not is.
        #
        # The full delivery list is snapshotted *before* any listener runs:
        # subscribers added mid-dispatch (e.g. a StreamingPipeline attaching
        # while a round's events are flowing) are deferred until the next
        # event, so the set of listeners an event reaches never depends on
        # handler side-effect ordering.  Unsubscribing mid-dispatch likewise
        # does not retract a delivery already snapshotted for this event.
        delivered = []
        for event_type in type(event).__mro__:
            if event_type is object:
                break
            for listener in self._listeners.get(event_type, []):
                if listener not in delivered:
                    delivered.append(listener)
        for listener in delivered:
            listener(event)

    def listener_count(self, event_type: Type[ControllerEvent]) -> int:
        return len(self._listeners.get(event_type, []))
