"""Host location service.

Learns where hosts live from PACKET_IN events arriving on edge ports, the
way ONOS's HostService does from ARP/NDP.  Locations feed path computation
and Athena's flow-origin meta data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.controller.topology import TopologyService
from repro.types import ConnectPoint, Dpid


@dataclass
class HostLocation:
    """Where a host was last seen."""

    mac: str
    ip: Optional[str]
    point: ConnectPoint
    last_seen: float


class HostService:
    """MAC / IP to attachment-point mapping learned from traffic."""

    def __init__(self, topology: TopologyService) -> None:
        self._topology = topology
        self._by_mac: Dict[str, HostLocation] = {}
        self._by_ip: Dict[str, HostLocation] = {}

    def learn(
        self,
        mac: str,
        ip: Optional[str],
        dpid: Dpid,
        port: int,
        now: float,
    ) -> Optional[HostLocation]:
        """Record a sighting; infrastructure ports are ignored."""
        point = ConnectPoint(dpid, port)
        if self._topology.is_infrastructure_port(point):
            return None
        location = HostLocation(mac=mac, ip=ip, point=point, last_seen=now)
        self._by_mac[mac] = location
        if ip is not None:
            self._by_ip[ip] = location
        return location

    def locate_mac(self, mac: str) -> Optional[HostLocation]:
        return self._by_mac.get(mac)

    def locate_ip(self, ip: str) -> Optional[HostLocation]:
        return self._by_ip.get(ip)

    def host_count(self) -> int:
        return len(self._by_mac)

    def all_hosts(self):
        return list(self._by_mac.values())

    def forget(self, mac: str) -> None:
        location = self._by_mac.pop(mac, None)
        if location is not None and location.ip is not None:
            self._by_ip.pop(location.ip, None)
