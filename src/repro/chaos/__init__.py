"""repro.chaos: deterministic fault injection for the Athena stack.

A :class:`FaultPlan` declares *what* fails and *when* on the simulated
clock; a :class:`ChaosController` arms the plan against a running
deployment; :class:`RetryPolicy`/:class:`RetryQueue` are the sim-clock
retry-with-backoff primitives the hardened consumers
(:class:`~repro.core.feature_manager.FeatureManager`, southbound polling)
build on.  Same plan + seed ⇒ byte-identical deterministic telemetry
snapshot — see ``docs/CHAOS.md``.

Scenario runners live in :mod:`repro.chaos.scenarios` (imported lazily —
they depend on :mod:`repro.core`, which itself uses this package's retry
primitives).
"""

from repro.chaos.controller import ChaosController
from repro.chaos.plan import (
    FAULT_KINDS,
    FaultEvent,
    FaultPlan,
    canned_plan,
    canned_plan_names,
)
from repro.chaos.retry import RetryPolicy, RetryQueue

__all__ = [
    "FAULT_KINDS",
    "ChaosController",
    "FaultEvent",
    "FaultPlan",
    "RetryPolicy",
    "RetryQueue",
    "canned_plan",
    "canned_plan_names",
]
