"""Canned detection scenarios run under fault plans.

Each scenario builds a full Athena stack (two controller instances, three
DB shards, compute cluster), drives attack + benign traffic on the sim
clock, runs detection, and returns a :class:`ScenarioResult` carrying the
detection outcome *and* the deterministic telemetry snapshot.  The
determinism contract (docs/CHAOS.md): calling :func:`run_scenario` twice
with the same ``(scenario, plan, seed)`` produces byte-identical
``snapshot_json`` — chaos included.

``RECALL_TOLERANCE`` is the documented allowance for how much detection
recall may drop under any canned fault plan relative to the no-fault
baseline; the conformance suite (``tests/test_chaos_scenarios.py``)
asserts it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro import telemetry
from repro.chaos.controller import ChaosController
from repro.chaos.plan import FaultPlan
from repro.errors import ChaosError

#: Maximum recall a canned fault plan may cost relative to the no-fault
#: baseline (documented in docs/CHAOS.md).
RECALL_TOLERANCE = 0.25

SCENARIOS = ("portscan", "ddos")


@dataclass
class ScenarioResult:
    """Outcome of one scenario run (detection + fault + telemetry state)."""

    scenario: str
    plan: str
    seed: int
    detected: bool
    recall: float
    attacker_ip: str
    flagged_ips: List[str]
    faults_applied: int = 0
    faults_skipped: int = 0
    recoveries: int = 0
    degraded_rounds: int = 0
    rounds_recovered: int = 0
    pending_writes: int = 0
    chaos_log: List[str] = field(default_factory=list)
    snapshot: Dict[str, Any] = field(default_factory=dict)
    snapshot_json: str = ""


def run_scenario(
    scenario: str,
    plan: Optional[FaultPlan] = None,
    seed: int = 0,
    duration: Optional[float] = None,
) -> ScenarioResult:
    """Run one canned scenario, optionally under a fault plan.

    Telemetry is force-enabled for the run (fresh facade, so instrument
    state starts from zero) and reset afterwards; the deterministic
    snapshot lands in the result.
    """
    if scenario not in SCENARIOS:
        raise ChaosError(
            f"unknown scenario {scenario!r}; known: {', '.join(SCENARIOS)}"
        )
    runner = _run_portscan if scenario == "portscan" else _run_ddos
    horizon = duration
    if horizon is None:
        horizon = 12.0 if plan is None else max(12.0, plan.horizon() + 4.0)
    tel = telemetry.configure(enabled=True)
    try:
        result = runner(plan, seed, horizon)
        result.snapshot = tel.snapshot(deterministic_only=True)
        result.snapshot_json = telemetry.to_json(result.snapshot)
        return result
    finally:
        telemetry.reset_telemetry()


def _build_stack():
    """The shared scenario stack: 3 switches, 2 instances, 3 shards."""
    from repro.controller import ControllerCluster, ReactiveForwarding
    from repro.core import AthenaDeployment
    from repro.dataplane.topologies import linear_topology
    from repro.workloads.flows import TrafficSchedule

    topo = linear_topology(n_switches=3, hosts_per_switch=2)
    cluster = ControllerCluster(topo.network, n_instances=2)
    cluster.adopt_all()
    cluster.start(poll=False)
    forwarding = ReactiveForwarding()
    forwarding.activate(cluster)
    athena = AthenaDeployment(cluster, athena_poll_interval=1.0)
    athena.start()
    schedule = TrafficSchedule(topo.network)
    schedule.prime_arp()
    return topo, athena, schedule


def _arm_chaos(athena, plan: Optional[FaultPlan], seed: int):
    if plan is None:
        return None
    chaos = ChaosController(athena, plan, seed=seed)
    chaos.arm()
    return chaos


def _finish(result: ScenarioResult, athena, chaos) -> ScenarioResult:
    result.degraded_rounds = athena.detector_manager.degraded_rounds
    result.rounds_recovered = athena.detector_manager.rounds_recovered
    result.pending_writes = athena.feature_manager.pending_writes
    if chaos is not None:
        result.faults_applied = chaos.faults_injected
        result.faults_skipped = chaos.faults_skipped
        result.recoveries = chaos.recoveries
        result.chaos_log = list(chaos.log)
    return result


def _run_portscan(
    plan: Optional[FaultPlan], seed: int, horizon: float
) -> ScenarioResult:
    """Port scan caught by a threshold on ``SRC_FLOW_FANOUT``."""
    from repro.core import GenerateQuery
    from repro.core.algorithm import GenerateAlgorithm
    from repro.core.preprocessor import GeneratePreprocessor
    from repro.workloads.flows import FlowSpec

    topo, athena, schedule = _build_stack()
    chaos = _arm_chaos(athena, plan, seed)
    scanner = topo.network.hosts["h1"]
    normal = topo.network.hosts["h2"]
    # The scan crosses both inter-switch links (h1 on s1 -> h5 on s3), so
    # link faults sit right on the attack path.
    for port in range(30):
        schedule.add_flow(
            FlowSpec(src_host="h1", dst_host="h5", sport=52000 + port,
                     dport=1000 + port, packet_size=64, rate_pps=4.0,
                     start=1.0 + port * 0.05, duration=1.5)
        )
    schedule.add_flow(
        FlowSpec(src_host="h2", dst_host="h6", sport=33000, dport=80,
                 rate_pps=10.0, start=1.0, duration=6.0, bidirectional=True)
    )
    topo.network.sim.run(until=horizon)

    query = GenerateQuery("feature_scope == flow && FLOW_PACKET_COUNT > 0")
    preprocessor = GeneratePreprocessor(
        normalization=None, features=["SRC_FLOW_FANOUT"]
    )
    algorithm = GenerateAlgorithm("threshold", column=0, threshold=10.0)
    model = athena.northbound.GenerateDetectionModel(
        query, preprocessor, algorithm
    )
    documents = athena.northbound.RequestFeatures(query)
    matrix, _, docs = model.preprocessor.transform(documents)
    predictions = model.estimator.predict(matrix)
    flagged = sorted(
        {
            doc.get("ip_src")
            for doc, verdict in zip(docs, predictions)
            if verdict and doc.get("ip_src")
        }
    )
    scanner_docs = [d for d in docs if d.get("ip_src") == scanner.ip]
    scanner_hits = [
        d
        for d, verdict in zip(docs, predictions)
        if verdict and d.get("ip_src") == scanner.ip
    ]
    recall = len(scanner_hits) / len(scanner_docs) if scanner_docs else 0.0
    result = ScenarioResult(
        scenario="portscan",
        plan=plan.name if plan is not None else "",
        seed=seed,
        detected=scanner.ip in flagged and normal.ip not in flagged,
        recall=recall,
        attacker_ip=scanner.ip,
        flagged_ips=flagged,
    )
    return _finish(result, athena, chaos)


def _run_ddos(
    plan: Optional[FaultPlan], seed: int, horizon: float
) -> ScenarioResult:
    """Live DDoS detection (K-Means trained offline) under faults."""
    from repro.core import GenerateQuery
    from repro.core.algorithm import GenerateAlgorithm
    from repro.core.preprocessor import GeneratePreprocessor
    from repro.workloads.ddos import DDoSDatasetGenerator, DDoSDatasetSpec
    from repro.workloads.flows import FlowSpec

    topo, athena, schedule = _build_stack()
    chaos = _arm_chaos(athena, plan, seed)
    attacker = topo.network.hosts["h2"]
    documents = DDoSDatasetGenerator(DDoSDatasetSpec(scale=0.0005)).generate()
    preprocessor = GeneratePreprocessor(
        normalization="minmax",
        marking="label",
        features=[
            "FLOW_PACKET_COUNT",
            "FLOW_BYTE_PER_PACKET",
            "FLOW_PACKET_PER_DURATION",
            "PAIR_FLOW",
        ],
    )
    model = athena.detector_manager.generate_detection_model(
        GenerateQuery(),
        preprocessor,
        GenerateAlgorithm("kmeans", k=6, max_iterations=15, runs=2, seed=1),
        documents=documents,
    )
    live_query = GenerateQuery("feature_scope == flow && FLOW_PACKET_COUNT > 0")
    verdicts: List = []
    validator_id = athena.northbound.add_online_validator(
        model.preprocessor,
        model,
        lambda feature, verdict: verdicts.append(
            (feature.indicators.get("ip_src"), verdict)
        ),
        query=live_query,
    )
    del validator_id
    # Periodic batch rounds exercise the skip-and-flag degradation path
    # while the store is failing underneath.
    sim = topo.network.sim
    sim.every(
        2.0,
        lambda: athena.detector_manager.poll_round(
            live_query, model.preprocessor, model
        ),
    )
    # One-way small-packet flood (h2 on s1 -> h6 on s3) plus benign
    # paired traffic on the same path.
    schedule.add_flow(
        FlowSpec(src_host="h2", dst_host="h6", sport=50001, dport=80,
                 packet_size=64, rate_pps=150.0, start=1.0,
                 duration=max(6.0, horizon - 4.0))
    )
    schedule.add_flow(
        FlowSpec(src_host="h1", dst_host="h5", rate_pps=10.0, start=1.0,
                 duration=5.0, bidirectional=True)
    )
    sim.run(until=horizon)

    attacker_samples = [v for ip, v in verdicts if ip == attacker.ip]
    attacker_alerts = [v for v in attacker_samples if v]
    recall = (
        len(attacker_alerts) / len(attacker_samples)
        if attacker_samples
        else 0.0
    )
    flagged = sorted({ip for ip, v in verdicts if v and ip})
    result = ScenarioResult(
        scenario="ddos",
        plan=plan.name if plan is not None else "",
        seed=seed,
        detected=attacker.ip in flagged,
        recall=recall,
        attacker_ip=attacker.ip,
        flagged_ips=flagged,
    )
    return _finish(result, athena, chaos)
