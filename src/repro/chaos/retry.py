"""Sim-clock retry with bounded exponential backoff.

Two pieces:

* :class:`RetryPolicy` — the backoff schedule (attempt → delay, capped);
* :class:`RetryQueue` — a never-dropping buffer of failed operations that
  re-tries them on the simulator clock.

The queue implements the "no lost acknowledged writes" guarantee the chaos
property suite checks: once an operation is submitted it either commits or
stays buffered — exhausting the attempt budget flags the operation through
telemetry (``athena_retry_exhausted_total``) and slows retries to the
policy's ``max_delay``, but never discards it.  All scheduling happens on
the deterministic sim clock, so retry timing replays exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Tuple, Type

from repro.errors import DatabaseError
from repro.telemetry import get_telemetry


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff: ``base_delay * multiplier**(attempt-1)``, capped."""

    max_attempts: int = 5
    base_delay: float = 0.1
    multiplier: float = 2.0
    max_delay: float = 2.0

    def delay_for(self, attempt: int) -> float:
        """Delay before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            attempt = 1
        return min(
            self.max_delay, self.base_delay * self.multiplier ** (attempt - 1)
        )


class _PendingOp:
    __slots__ = ("op", "attempts")

    def __init__(self, op: Callable[[], None]) -> None:
        self.op = op
        self.attempts = 1  # the failed initial attempt counts


class RetryQueue:
    """Failed operations, retried on the sim clock until they commit."""

    def __init__(
        self,
        sim,
        policy: RetryPolicy = RetryPolicy(),
        name: str = "default",
        retryable: Tuple[Type[BaseException], ...] = (DatabaseError,),
    ) -> None:
        self.sim = sim
        self.policy = policy
        self.name = name
        self.retryable = retryable
        self._pending: List[_PendingOp] = []
        self._timer_armed = False
        registry = get_telemetry().registry
        labels = {"queue": name}
        self._metric_attempts = registry.counter(
            "athena_retry_attempts_total",
            "Operation attempts made through a retry queue.",
            labelnames=("queue",),
        ).labels(**labels)
        self._metric_committed = registry.counter(
            "athena_retry_committed_total",
            "Operations that eventually committed.",
            labelnames=("queue",),
        ).labels(**labels)
        self._metric_buffered = registry.counter(
            "athena_retry_buffered_total",
            "Operations buffered after a retryable failure.",
            labelnames=("queue",),
        ).labels(**labels)
        self._metric_exhausted = registry.counter(
            "athena_retry_exhausted_total",
            "Operations that exceeded the attempt budget (still buffered).",
            labelnames=("queue",),
        ).labels(**labels)
        self.committed = 0
        self.exhausted = 0

    @property
    def pending(self) -> int:
        """Operations currently buffered awaiting retry."""
        return len(self._pending)

    def submit(self, op: Callable[[], None]) -> bool:
        """Run ``op`` now; buffer it for retry on a retryable failure.

        Returns ``True`` when the operation committed immediately.  The
        operation is *acknowledged* either way — it will never be dropped.
        """
        self._metric_attempts.inc()
        try:
            op()
        except self.retryable:
            self._metric_buffered.inc()
            self._pending.append(_PendingOp(op))
            self._arm()
            return False
        self.committed += 1
        self._metric_committed.inc()
        return True

    def flush(self) -> int:
        """Retry everything pending right now; returns commits achieved."""
        return self._drain(rearm=False)

    # -- internals ---------------------------------------------------------

    def _arm(self) -> None:
        if self._timer_armed or self.sim is None:
            return
        self._timer_armed = True
        attempt = min(p.attempts for p in self._pending)
        self.sim.after(self.policy.delay_for(attempt), self._on_timer)

    def _on_timer(self) -> None:
        self._timer_armed = False
        self._drain(rearm=True)

    def _drain(self, rearm: bool) -> int:
        pending, self._pending = self._pending, []
        committed = 0
        for entry in pending:
            self._metric_attempts.inc()
            try:
                entry.op()
            except self.retryable:
                entry.attempts += 1
                if entry.attempts == self.policy.max_attempts:
                    # Flagged, not dropped: the budget overrun is visible
                    # in telemetry while the write stays acknowledged.
                    self.exhausted += 1
                    self._metric_exhausted.inc()
                self._pending.append(entry)
            else:
                committed += 1
                self.committed += 1
                self._metric_committed.inc()
        if rearm and self._pending:
            self._arm()
        return committed
