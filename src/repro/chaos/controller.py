"""The chaos controller: arms a :class:`FaultPlan` against a deployment.

The controller schedules every event of a plan on the deployment's
simulator and applies it to the matching layer:

* ``instance_down`` / ``instance_up`` — controller-instance crash
  (mastership failover moves every mastered switch to a live standby)
  and rejoin-as-standby;
* ``shard_down`` / ``shard_up`` / ``replica_lag`` — database shard loss,
  rejoin, and injected replication lag;
* ``link_down`` / ``link_up`` / ``link_flap`` / ``partition`` —
  data-plane link faults (ports flip too, so PortStatus reaches the
  controller);
* ``worker_crash`` — the next tasks on a compute worker raise, driving
  the backend's retry-on-another-worker path;
* ``sb_drop`` / ``sb_delay`` / ``sb_dup`` — probabilistic southbound
  channel faults on one instance, drawn from a :class:`SeededRng` stream
  per fault event.

Everything — fault times, recovery times, per-message coin flips — lives
on the simulated clock and a named RNG tree, so a (plan, seed) pair
replays to a byte-identical deterministic telemetry snapshot.  The
deployment is duck-typed (``cluster``, ``database``, ``compute``
attributes) to keep this module import-free of :mod:`repro.core`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.chaos.plan import FaultEvent, FaultPlan
from repro.controller.events import MessageDirection
from repro.errors import ChaosError
from repro.simkernel.rng import SeededRng
from repro.telemetry import get_telemetry

_DIRECTION_NAMES = {
    MessageDirection.TO_SWITCH: "to_switch",
    MessageDirection.FROM_SWITCH: "from_switch",
}


class _SouthboundFault:
    """One active probabilistic channel fault on a controller instance."""

    __slots__ = ("kind", "rate", "delay", "direction", "until", "rng")

    def __init__(
        self,
        kind: str,
        rate: float,
        delay: float,
        direction: str,
        until: Optional[float],
        rng: SeededRng,
    ) -> None:
        self.kind = kind
        self.rate = rate
        self.delay = delay
        self.direction = direction
        self.until = until
        self.rng = rng


class ChaosController:
    """Arms a fault plan against a running Athena deployment."""

    def __init__(self, deployment, plan: FaultPlan, seed: Optional[int] = None) -> None:
        self.deployment = deployment
        self.plan = plan
        root_seed = seed if seed is not None else (plan.seed or 0)
        self.rng = SeededRng(root_seed, "chaos")
        self.sim = deployment.cluster.sim
        self.faults_injected = 0
        self.faults_skipped = 0
        self.recoveries = 0
        #: Deterministic action log: ``(sim_time, kind, note)`` per action.
        self.log: List[str] = []
        self._armed = False
        self._sb_faults: Dict[int, List[_SouthboundFault]] = {}
        registry = get_telemetry().registry
        self._metric_faults = registry.counter(
            "athena_chaos_faults_total",
            "Fault events applied by the chaos controller, by kind.",
            labelnames=("kind",),
        )
        self._metric_skipped = registry.counter(
            "athena_chaos_skipped_total",
            "Fault events skipped as inapplicable, by kind.",
            labelnames=("kind",),
        )
        self._metric_recoveries = registry.counter(
            "athena_chaos_recoveries_total",
            "Recovery actions applied (target back in service), by kind.",
        )

    # -- arming ------------------------------------------------------------

    def arm(self) -> int:
        """Validate the plan against the deployment and schedule it.

        Returns the number of scheduled fault events.  Raises
        :class:`ChaosError` if any event targets something that does not
        exist, *before* anything is scheduled.
        """
        if self._armed:
            raise ChaosError("chaos controller is already armed")
        for event in self.plan:
            self._validate_target(event)
        for index, event in enumerate(self.plan):
            when = max(self.sim.now, event.at)
            self.sim.at(when, lambda e=event, i=index: self._fire(e, i))
        self._armed = True
        return len(self.plan)

    def _validate_target(self, event: FaultEvent) -> None:
        params = event.params
        cluster = self.deployment.cluster
        if "instance" in params:
            instance_id = int(params["instance"])
            if not any(
                i.instance_id == instance_id for i in cluster.instances
            ):
                raise ChaosError(f"{event.kind}: no instance {instance_id}")
        if "shard" in params:
            shard = int(params["shard"])
            if not 0 <= shard < len(self.deployment.database.shards):
                raise ChaosError(f"{event.kind}: no shard {shard}")
        if "worker" in params:
            worker = int(params["worker"])
            if not 0 <= worker < len(self.deployment.compute.workers):
                raise ChaosError(f"{event.kind}: no worker {worker}")
        if "a" in params:
            a, b = int(params["a"]), int(params["b"])
            if cluster.network.link_between(a, b) is None:
                raise ChaosError(f"{event.kind}: no link between {a} and {b}")
        if "groups" in params:
            groups = params["groups"]
            if len(groups) != 2 or not all(groups):
                raise ChaosError(
                    f"{event.kind}: groups must be two non-empty dpid lists"
                )
            for dpid in (d for group in groups for d in group):
                if dpid not in cluster.network.switches:
                    raise ChaosError(f"{event.kind}: unknown dpid {dpid}")

    # -- dispatch ----------------------------------------------------------

    def _fire(self, event: FaultEvent, index: int) -> None:
        getattr(self, f"_apply_{event.kind}")(event, index)

    def _record(self, event: FaultEvent, note: str = "") -> None:
        self.faults_injected += 1
        self._metric_faults.labels(kind=event.kind).inc()
        self.log.append(f"{self.sim.now:.3f} {event.kind} {note}".rstrip())

    def _skip(self, event: FaultEvent, why: str) -> None:
        self.faults_skipped += 1
        self._metric_skipped.labels(kind=event.kind).inc()
        self.log.append(f"{self.sim.now:.3f} {event.kind} skipped: {why}")

    def _recovered(self, kind: str, note: str = "") -> None:
        self.recoveries += 1
        self._metric_recoveries.inc()
        self.log.append(f"{self.sim.now:.3f} {kind} recovered {note}".rstrip())

    # -- controller instances ----------------------------------------------

    def _apply_instance_down(self, event: FaultEvent, index: int) -> None:
        instance_id = int(event.params["instance"])
        cluster = self.deployment.cluster
        if instance_id in cluster.down_instances:
            self._skip(event, f"instance {instance_id} already down")
            return
        survivors = [
            i.instance_id
            for i in cluster.instances
            if i.instance_id != instance_id
            and i.instance_id not in cluster.down_instances
        ]
        if not survivors:
            self._skip(event, "last live instance")
            return
        moved = cluster.fail_instance(instance_id)
        self._record(event, f"instance {instance_id}, moved dpids {moved}")

    def _apply_instance_up(self, event: FaultEvent, index: int) -> None:
        instance_id = int(event.params["instance"])
        cluster = self.deployment.cluster
        if instance_id not in cluster.down_instances:
            self._skip(event, f"instance {instance_id} not down")
            return
        cluster.recover_instance(instance_id)
        self._record(event, f"instance {instance_id} rejoined as standby")
        self._recovered(event.kind, f"instance {instance_id}")

    # -- database shards ----------------------------------------------------

    def _apply_shard_down(self, event: FaultEvent, index: int) -> None:
        shard = int(event.params["shard"])
        database = self.deployment.database
        if not database.shards[shard].up:
            self._skip(event, f"shard {shard} already down")
            return
        database.fail_shard(shard)
        self._record(event, f"shard {shard}")
        duration = event.params.get("duration")
        if duration is not None:
            self.sim.after(duration, lambda: self._shard_back_up(shard))

    def _shard_back_up(self, shard: int) -> None:
        database = self.deployment.database
        if not database.shards[shard].up:
            database.recover_shard(shard)
            self._recovered("shard_down", f"shard {shard}")

    def _apply_shard_up(self, event: FaultEvent, index: int) -> None:
        shard = int(event.params["shard"])
        if self.deployment.database.shards[shard].up:
            self._skip(event, f"shard {shard} already up")
            return
        self.deployment.database.recover_shard(shard)
        self._record(event, f"shard {shard}")
        self._recovered(event.kind, f"shard {shard}")

    def _apply_replica_lag(self, event: FaultEvent, index: int) -> None:
        shard = int(event.params["shard"])
        duration = float(event.params["duration"])
        database = self.deployment.database
        database.begin_replica_lag(shard)
        self._record(event, f"shard {shard} for {duration}s")

        def catch_up() -> None:
            applied = database.end_replica_lag(shard)
            self._recovered(
                "replica_lag", f"shard {shard}, {applied} writes applied"
            )

        self.sim.after(duration, catch_up)

    # -- data-plane links ----------------------------------------------------

    def _set_link(self, a: int, b: int, up: bool) -> None:
        network = self.deployment.cluster.network
        link = network.link_between(a, b)
        if link is None or link.up == up:
            return
        link.up = up
        for end in link.endpoints():
            point = end.switch_point
            network.switches[point.dpid].set_port_state(point.port, up)

    def _apply_link_down(self, event: FaultEvent, index: int) -> None:
        a, b = int(event.params["a"]), int(event.params["b"])
        self._set_link(a, b, False)
        self._record(event, f"link {a}-{b}")
        duration = event.params.get("duration")
        if duration is not None:
            self.sim.after(duration, lambda: self._link_back_up(a, b))

    def _link_back_up(self, a: int, b: int) -> None:
        link = self.deployment.cluster.network.link_between(a, b)
        if link is not None and not link.up:
            self._set_link(a, b, True)
            self._recovered("link_down", f"link {a}-{b}")

    def _apply_link_up(self, event: FaultEvent, index: int) -> None:
        a, b = int(event.params["a"]), int(event.params["b"])
        self._set_link(a, b, True)
        self._record(event, f"link {a}-{b}")
        self._recovered(event.kind, f"link {a}-{b}")

    def _apply_link_flap(self, event: FaultEvent, index: int) -> None:
        a, b = int(event.params["a"]), int(event.params["b"])
        down_for = float(event.params.get("down_for", 0.5))
        times = max(1, int(event.params.get("times", 1)))
        period = float(event.params.get("period", down_for * 2 or 1.0))
        self._record(event, f"link {a}-{b} x{times}")
        for i in range(times):
            start = i * period
            if start <= 0:
                self._set_link(a, b, False)
            else:
                self.sim.after(start, lambda: self._set_link(a, b, False))
            self.sim.after(
                start + down_for, lambda: self._link_back_up(a, b)
            )

    def _apply_partition(self, event: FaultEvent, index: int) -> None:
        left, right = (set(g) for g in event.params["groups"])
        network = self.deployment.cluster.network
        cut: List[Any] = []
        for point_a, point_b in network.switch_links():
            pair = {point_a.dpid, point_b.dpid}
            if pair & left and pair & right:
                cut.append((point_a.dpid, point_b.dpid))
        for a, b in cut:
            self._set_link(a, b, False)
        self._record(event, f"{len(cut)} links cut")
        duration = event.params.get("duration")
        if duration is not None:

            def heal() -> None:
                for a, b in cut:
                    self._link_back_up(a, b)

            self.sim.after(duration, heal)

    # -- compute workers -----------------------------------------------------

    def _apply_worker_crash(self, event: FaultEvent, index: int) -> None:
        worker = int(event.params["worker"])
        count = int(event.params.get("count", 1))
        self.deployment.compute.workers[worker].inject_crashes(count)
        self._record(event, f"worker {worker} x{count}")

    # -- southbound channel faults -------------------------------------------

    def _apply_sb_drop(self, event: FaultEvent, index: int) -> None:
        self._add_sb_fault(event, index)

    def _apply_sb_delay(self, event: FaultEvent, index: int) -> None:
        self._add_sb_fault(event, index)

    def _apply_sb_dup(self, event: FaultEvent, index: int) -> None:
        self._add_sb_fault(event, index)

    def _add_sb_fault(self, event: FaultEvent, index: int) -> None:
        instance_id = int(event.params["instance"])
        duration = event.params.get("duration")
        fault = _SouthboundFault(
            kind=event.kind,
            rate=float(event.params["rate"]),
            delay=float(event.params.get("delay", 0.0)),
            direction=str(event.params.get("direction", "both")),
            until=None if duration is None else self.sim.now + duration,
            rng=self.rng.child(f"sb/{index}"),
        )
        self._sb_faults.setdefault(instance_id, []).append(fault)
        self._ensure_filter(instance_id)
        self._record(event, f"instance {instance_id} rate={fault.rate}")
        if duration is not None:
            self.sim.after(
                duration,
                lambda: self._recovered(event.kind, f"instance {instance_id}"),
            )

    def _ensure_filter(self, instance_id: int) -> None:
        controller = self.deployment.cluster.instance(instance_id)
        if getattr(controller, "_fault_filter", None) is not None:
            return
        faults = self._sb_faults[instance_id]

        def channel_filter(dpid, msg, direction):
            name = _DIRECTION_NAMES[direction]
            verdict = None
            for fault in faults:
                if fault.until is not None and self.sim.now >= fault.until:
                    continue
                if fault.direction not in ("both", name):
                    continue
                if float(fault.rng.random()) >= fault.rate:
                    continue
                if fault.kind == "sb_drop":
                    return []
                if fault.kind == "sb_delay":
                    verdict = [fault.delay]
                elif fault.kind == "sb_dup":
                    verdict = [0.0, 0.0]
            return verdict

        controller.set_fault_filter(channel_filter)

    # -- reporting -----------------------------------------------------------

    def summary(self) -> Dict[str, Any]:
        return {
            "plan": self.plan.name,
            "events": len(self.plan),
            "applied": self.faults_injected,
            "skipped": self.faults_skipped,
            "recoveries": self.recoveries,
        }
