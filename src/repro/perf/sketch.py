"""The ``ATHENA_SKETCH`` switch.

The sketch feature path (docs/SKETCH.md) swaps the exact per-flow state
behind the ``SKETCH_*`` feature scope for the bounded-memory structures
of :mod:`repro.sketch`: Count-Min heavy hitters, HyperLogLog
cardinalities and a Bloom seen-host memory, all per switch and per
sampling window.

It defaults to **off**: exact extraction stays untouched, and no
sketch-scoped records are emitted.  ``ATHENA_SKETCH=1`` (or
:func:`set_sketch(True) <set_sketch>`) makes every
:class:`~repro.core.generator.FeatureGenerator` fold flow observations
into its :class:`~repro.sketch.features.SketchFeatureState` and emit one
sketch-scoped record per switch per flow-stats round.  Unlike
``ATHENA_COLUMNAR`` this is not an equivalence switch — sketch features
are approximate by design — but the scenario tests hold detection recall
on sketch features within a fixed tolerance of the exact path, and
``benchmarks/bench_sketch.py`` enforces the memory/throughput side.

Components read the flag per event (not at construction), so
:func:`sketch_scope` around a workload is enough to switch one run.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

#: Environment switch: "1" / "true" / "yes" / "on" enable the sketch path.
ENV_FLAG = "ATHENA_SKETCH"

_ENABLING = ("1", "true", "yes", "on")


def _env_enabled() -> bool:
    return os.environ.get(ENV_FLAG, "0").strip().lower() in _ENABLING


#: Cached process-wide setting; module-attribute reads keep the per-event
#: cost of consulting the flag to one dict lookup.
ENABLED: bool = _env_enabled()


def sketch_enabled() -> bool:
    """Whether feature generation runs the sketch path."""
    return ENABLED


def set_sketch(enabled: bool) -> None:
    """Programmatically force the flag (tests and the bench harness)."""
    global ENABLED
    ENABLED = bool(enabled)


def refresh_sketch() -> bool:
    """Re-read ``ATHENA_SKETCH`` from the environment; returns it."""
    global ENABLED
    ENABLED = _env_enabled()
    return ENABLED


@contextmanager
def sketch_scope(enabled: bool) -> Iterator[None]:
    """Temporarily force the flag, restoring the previous value on exit."""
    previous = ENABLED
    set_sketch(enabled)
    try:
        yield
    finally:
        set_sketch(previous)
