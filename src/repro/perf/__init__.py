"""repro.perf — hot-path switches and the benchmark-regression harness.

Two concerns live here (docs/PERF.md):

* :mod:`repro.perf.fastpath` — the process-wide ``ATHENA_FAST_PATH``
  switch the optimized data structures consult.  Fast paths are **on**
  by default; ``ATHENA_FAST_PATH=0`` routes every hot call through the
  original reference implementations, which is how the equivalence
  tests and the regression bench compare the two.
* :mod:`repro.perf.columnar` — the ``ATHENA_COLUMNAR`` switch (default
  **off**) that opts batch detection into the numpy frame path of
  :mod:`repro.distdb.frame`; the same equivalence contract applies, with
  ``benchmarks/bench_scale.py`` comparing the two.
* :mod:`repro.perf.sketch` — the ``ATHENA_SKETCH`` switch (default
  **off**) that makes feature generation emit the sketch-backed
  ``SKETCH_*`` scope from :mod:`repro.sketch` (docs/SKETCH.md);
  ``benchmarks/bench_sketch.py`` gates its memory/recall contract.
* :mod:`repro.perf.harness` — measurement and comparison machinery for
  ``benchmarks/bench_hotpath.py`` and ``benchmarks/bench_scale.py``:
  time a workload under both paths, check results are identical,
  compute throughput and speedup, and persist ``BENCH_*.json`` so
  successive PRs accumulate a perf trajectory.
"""

from __future__ import annotations

from repro.perf.columnar import (
    columnar_enabled,
    columnar_scope,
    refresh_columnar,
    set_columnar,
)
from repro.perf.columnar import ENV_FLAG as COLUMNAR_ENV_FLAG
from repro.perf.fastpath import (
    ENV_FLAG,
    fast_path_enabled,
    fast_path_scope,
    refresh_fast_path,
    set_fast_path,
)
from repro.perf.harness import BenchResult, HotpathReport, measure_throughput
from repro.perf.sketch import (
    refresh_sketch,
    set_sketch,
    sketch_enabled,
    sketch_scope,
)
from repro.perf.sketch import ENV_FLAG as SKETCH_ENV_FLAG

__all__ = [
    "BenchResult",
    "COLUMNAR_ENV_FLAG",
    "ENV_FLAG",
    "HotpathReport",
    "SKETCH_ENV_FLAG",
    "columnar_enabled",
    "columnar_scope",
    "fast_path_enabled",
    "fast_path_scope",
    "measure_throughput",
    "refresh_columnar",
    "refresh_fast_path",
    "refresh_sketch",
    "set_columnar",
    "set_fast_path",
    "set_sketch",
    "sketch_enabled",
    "sketch_scope",
]
