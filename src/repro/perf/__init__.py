"""repro.perf — hot-path switches and the benchmark-regression harness.

Two concerns live here (docs/PERF.md):

* :mod:`repro.perf.fastpath` — the process-wide ``ATHENA_FAST_PATH``
  switch the optimized data structures consult.  Fast paths are **on**
  by default; ``ATHENA_FAST_PATH=0`` routes every hot call through the
  original reference implementations, which is how the equivalence
  tests and the regression bench compare the two.
* :mod:`repro.perf.harness` — measurement and comparison machinery for
  ``benchmarks/bench_hotpath.py``: time a workload under both paths,
  check results are identical, compute throughput and speedup, and
  persist ``BENCH_hotpath.json`` so successive PRs accumulate a perf
  trajectory.
"""

from __future__ import annotations

from repro.perf.fastpath import (
    ENV_FLAG,
    fast_path_enabled,
    fast_path_scope,
    refresh_fast_path,
    set_fast_path,
)
from repro.perf.harness import BenchResult, HotpathReport, measure_throughput

__all__ = [
    "BenchResult",
    "ENV_FLAG",
    "HotpathReport",
    "fast_path_enabled",
    "fast_path_scope",
    "measure_throughput",
    "refresh_fast_path",
    "set_fast_path",
]
