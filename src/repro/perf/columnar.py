"""The ``ATHENA_COLUMNAR`` switch.

The columnar batch feature path (docs/PERF.md) moves the store→model
pipeline from per-document Python dicts onto numpy column frames:
:meth:`~repro.core.feature_manager.FeatureManager.request_frame`
materialises a :class:`~repro.distdb.frame.FeatureFrame` straight from
the store's raw documents, compiles query filters to boolean masks, and
hands the columns to the ML layer without a per-row ``to_vector`` loop.

It defaults to **off**: the flag opts batch detection into the columnar
path, while ``ATHENA_COLUMNAR=1`` (or :func:`set_columnar(True)
<set_columnar>`) flips :class:`~repro.core.detector_manager.DetectorManager`
model generation and validation onto frames.  Like ``ATHENA_FAST_PATH``,
the switch exists for equivalence: both paths promise byte-identical
matrices, marks, predictions, and alerts on the same store state, and
the scenario tests plus ``benchmarks/bench_scale.py`` enforce that
promise by running the same workload under both settings.

Components read the flag per batch operation (not at construction), so
:func:`columnar_scope` around a detection round is enough to switch one
run.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

#: Environment switch: "1" / "true" / "yes" / "on" enable the columnar path.
ENV_FLAG = "ATHENA_COLUMNAR"

_ENABLING = ("1", "true", "yes", "on")


def _env_enabled() -> bool:
    return os.environ.get(ENV_FLAG, "0").strip().lower() in _ENABLING


#: Cached process-wide setting; module-attribute reads keep the per-call
#: cost of consulting the flag to one dict lookup.
ENABLED: bool = _env_enabled()


def columnar_enabled() -> bool:
    """Whether batch detection runs on the columnar frame path."""
    return ENABLED


def set_columnar(enabled: bool) -> None:
    """Programmatically force the flag (tests and the bench harness)."""
    global ENABLED
    ENABLED = bool(enabled)


def refresh_columnar() -> bool:
    """Re-read ``ATHENA_COLUMNAR`` from the environment; returns it."""
    global ENABLED
    ENABLED = _env_enabled()
    return ENABLED


@contextmanager
def columnar_scope(enabled: bool) -> Iterator[None]:
    """Temporarily force the flag, restoring the previous value on exit."""
    previous = ENABLED
    set_columnar(enabled)
    try:
        yield
    finally:
        set_columnar(previous)
