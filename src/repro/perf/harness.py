"""The benchmark-regression harness behind ``bench_hotpath``.

A hot-path optimization is only done when three things hold: the fast
path is *faster*, it is *equivalent* (same outputs as the reference
path), and both facts are *recorded* so the next PR can see whether it
regressed them.  This module packages those three steps:

* :func:`measure_throughput` — time a callable over a known operation
  count with the sanctioned telemetry clocks, taking the median of
  several rounds so one scheduler hiccup does not decide the number;
* :class:`BenchResult` — one named comparison (fast vs slow ops/sec,
  speedup, and an equivalence verdict);
* :class:`HotpathReport` — collects results, evaluates pass/fail gates,
  and writes the ``BENCH_hotpath.json`` artifact CI uploads.
"""

from __future__ import annotations

import json
import platform
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.telemetry.clocks import Stopwatch


def measure_throughput(
    fn: Callable[[], Any],
    n_ops: int,
    rounds: int = 3,
    warmup: bool = True,
) -> float:
    """Median operations/second of ``fn`` (which performs ``n_ops`` ops).

    ``fn`` is invoked once unmeasured when ``warmup`` is set (priming
    allocators, caches, and lazily-built indexes), then ``rounds`` times
    under the stopwatch.
    """
    if warmup:
        fn()
    rates: List[float] = []
    for _ in range(max(1, rounds)):
        watch = Stopwatch()
        fn()
        elapsed = watch.elapsed()
        rates.append(n_ops / elapsed if elapsed > 0 else float("inf"))
    rates.sort()
    return rates[len(rates) // 2]


@dataclass
class BenchResult:
    """One fast-vs-slow comparison."""

    name: str
    fast_ops_per_sec: float
    slow_ops_per_sec: float
    n_ops: int
    equivalent: bool
    unit: str = "ops/s"
    detail: Dict[str, Any] = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        if self.slow_ops_per_sec <= 0:
            return float("inf")
        return self.fast_ops_per_sec / self.slow_ops_per_sec

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "unit": self.unit,
            "n_ops": self.n_ops,
            "fast_ops_per_sec": round(self.fast_ops_per_sec, 2),
            "slow_ops_per_sec": round(self.slow_ops_per_sec, 2),
            "speedup": round(self.speedup, 3),
            "equivalent": self.equivalent,
            **({"detail": self.detail} if self.detail else {}),
        }


class HotpathReport:
    """Collects bench results and persists the regression artifact."""

    def __init__(self, quick: bool = False, bench: str = "hotpath") -> None:
        self.quick = quick
        #: Artifact label ("hotpath", "scale", ...) recorded in the JSON.
        self.bench = bench
        self.results: List[BenchResult] = []
        #: name -> minimum required speedup; a result below its gate (or
        #: any non-equivalent result) fails the report.
        self.gates: Dict[str, float] = {}

    def add(self, result: BenchResult, min_speedup: Optional[float] = None) -> None:
        self.results.append(result)
        if min_speedup is not None:
            self.gates[result.name] = min_speedup

    def failures(self) -> List[str]:
        """Human-readable gate violations (empty means the report passes)."""
        problems: List[str] = []
        by_name = {r.name: r for r in self.results}
        for result in self.results:
            if not result.equivalent:
                problems.append(
                    f"{result.name}: fast and slow paths returned different results"
                )
        for name, floor in self.gates.items():
            result = by_name.get(name)
            if result is None:
                problems.append(f"{name}: gated but never measured")
            elif result.speedup < floor:
                problems.append(
                    f"{name}: speedup {result.speedup:.2f}x below the "
                    f"{floor:.2f}x gate"
                )
        return problems

    @property
    def passed(self) -> bool:
        return not self.failures()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "bench": self.bench,
            "quick": self.quick,
            "python": platform.python_version(),
            "results": [r.to_dict() for r in self.results],
            "gates": {k: v for k, v in sorted(self.gates.items())},
            "failures": self.failures(),
            "passed": self.passed,
        }

    def write(self, path: str) -> str:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2)
            handle.write("\n")
        return path

    def print_summary(self) -> None:
        print(f"\n=== {self.bench} bench ({'quick' if self.quick else 'full'}) ===")
        for result in self.results:
            gate = self.gates.get(result.name)
            gate_text = f"  (gate >= {gate:.1f}x)" if gate else ""
            print(
                f"  {result.name:28s} fast {result.fast_ops_per_sec:>12,.0f} "
                f"{result.unit}  slow {result.slow_ops_per_sec:>12,.0f} "
                f"{result.unit}  speedup {result.speedup:6.2f}x"
                f"  equivalent={result.equivalent}{gate_text}"
            )
        for problem in self.failures():
            print(f"  FAIL: {problem}")
        print(f"  overall: {'PASS' if self.passed else 'FAIL'}")
