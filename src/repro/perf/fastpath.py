"""The ``ATHENA_FAST_PATH`` switch.

The indexed flow-table lookup, the compiled :class:`~repro.openflow.match.Match`
predicate, and the zero-copy document reads all consult one process-wide
flag.  It defaults to **on**; setting ``ATHENA_FAST_PATH=0`` in the
environment (or calling :func:`set_fast_path(False) <set_fast_path>`)
falls back to the original reference implementations.

The escape hatch exists for one reason: equivalence.  The optimized
paths promise bit-identical behaviour — same winning flow entries, same
query results, same telemetry-visible counters — and the scenario tests
plus ``benchmarks/bench_hotpath.py`` enforce that promise by running the
same workload under both settings and comparing outputs.

Components read the flag at different times (flow tables at
construction, match predicates per call), so flip it *before* building
the structures under test — or use :func:`fast_path_scope` which makes
that explicit.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional

#: Environment switch: "0" / "false" / "no" / "off" disable the fast paths.
ENV_FLAG = "ATHENA_FAST_PATH"

_DISABLING = ("0", "false", "no", "off")


def _env_enabled() -> bool:
    return os.environ.get(ENV_FLAG, "1").strip().lower() not in _DISABLING


#: Cached process-wide setting; module-attribute reads keep the per-call
#: cost of consulting the flag to one dict lookup.
ENABLED: bool = _env_enabled()


def fast_path_enabled() -> bool:
    """Whether the optimized hot paths are active."""
    return ENABLED


def set_fast_path(enabled: bool) -> None:
    """Programmatically force the flag (tests and the bench harness)."""
    global ENABLED
    ENABLED = bool(enabled)


def refresh_fast_path() -> bool:
    """Re-read ``ATHENA_FAST_PATH`` from the environment; returns it."""
    global ENABLED
    ENABLED = _env_enabled()
    return ENABLED


@contextmanager
def fast_path_scope(enabled: bool) -> Iterator[None]:
    """Temporarily force the flag, restoring the previous value on exit."""
    previous = ENABLED
    set_fast_path(enabled)
    try:
        yield
    finally:
        set_fast_path(previous)
