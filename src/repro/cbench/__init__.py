"""Cbench-style controller benchmarking (Table IX / Figure 11)."""

from repro.cbench.harness import CbenchHarness, CbenchResult, cpu_usage_curve

__all__ = ["CbenchHarness", "CbenchResult", "cpu_usage_curve"]
