"""The Cbench-equivalent harness.

Cbench's *throughput mode* emulates switches that flood PACKET_IN messages
at the controller and counts flow-install responses per second.  The
harness does the same against a :class:`ControllerInstance`: synthetic
PACKET_INs with rotating source addresses are pushed through the real
switch→controller path, a minimal responder app answers each with a
FLOW_MOD, and the measured quantity is *responses per wall-clock second*.

Three configurations reproduce Table IX:

* ``without``   — bare controller + responder;
* ``with``      — Athena attached, features published to the database;
* ``with_no_db``— Athena attached, database writes disabled.

Figure 11's CPU-usage experiment derives from the same event loop: the
measured per-event CPU cost maps an offered flow-event rate to a CPU
utilisation (capped at saturation), with and without Athena.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.controller.cluster import ControllerCluster
from repro.controller.events import PacketInEvent
from repro.core.deployment import AthenaDeployment
from repro.dataplane.network import Network
from repro.distdb import DatabaseCluster
from repro.openflow.actions import ActionOutput
from repro.openflow.constants import FlowModCommand
from repro.openflow.match import Match
from repro.openflow.messages import FlowMod, PacketIn
from repro.telemetry import MetricsRegistry
from repro.telemetry.clocks import Stopwatch, cpu_now
from repro.types import mac_from_int


@dataclass
class CbenchResult:
    """Outcome of one throughput round."""

    mode: str
    responses: int
    elapsed_seconds: float

    @property
    def responses_per_second(self) -> float:
        return self.responses / self.elapsed_seconds if self.elapsed_seconds else 0.0


class _Responder:
    """The minimal learning-switch responder Cbench assumes."""

    def __init__(self, cluster: ControllerCluster, match_pool: int = 256) -> None:
        self.cluster = cluster
        self.match_pool = match_pool
        self.responses = 0
        cluster.bus.subscribe(PacketInEvent, self._on_packet_in)

    def _on_packet_in(self, event: PacketInEvent) -> None:
        headers = event.message.headers
        match = Match(
            eth_src=headers.get("eth_src"),
            eth_dst=headers.get("eth_dst"),
        )
        self.cluster.send(
            event.dpid,
            FlowMod(
                command=FlowModCommand.ADD,
                match=match,
                priority=10,
                actions=[ActionOutput(port=2)],
            ),
        )
        self.responses += 1


class CbenchHarness:
    """Builds the bench environment and runs throughput rounds."""

    def __init__(
        self,
        n_switches: int = 16,
        match_pool: int = 64,
        db_shards: int = 3,
        db_backend: str = "mongo",
    ) -> None:
        if db_backend not in ("mongo", "cassandra"):
            raise ValueError(f"unknown db backend {db_backend!r}")
        self.n_switches = n_switches
        self.match_pool = match_pool
        self.db_shards = db_shards
        #: 'mongo' = the document store the paper used; 'cassandra' = the
        #: write-optimised column store Section VII-C proposes.
        self.db_backend = db_backend
        #: Measurement registry — always enabled and private to the
        #: harness, so bench numbers are read from the same metric
        #: primitives the runtime exposes (one code path for benches
        #: and ``athena metrics``), independent of ATHENA_TELEMETRY.
        self.metrics = MetricsRegistry(enabled=True)
        self._metric_responses = self.metrics.counter(
            "athena_cbench_responses_total",
            "Flow-install responses counted across throughput rounds.",
            labelnames=("mode",),
        )
        self._metric_round_seconds = self.metrics.gauge(
            "athena_cbench_round_seconds",
            "Wall seconds of the most recent throughput round.",
            labelnames=("mode",),
        )
        self._metric_event_cpu = self.metrics.histogram(
            "athena_cbench_event_cpu_seconds",
            "Mean CPU seconds per flow event, one observation per "
            "measurement run.",
            labelnames=("mode",),
        )

    def snapshot(self) -> List[Dict[str, Any]]:
        """The harness's metric state (what the benches read)."""
        return self.metrics.snapshot()

    def event_cost_mean(self, mode: str) -> float:
        """Mean of every per-event CPU cost measured for ``mode``."""
        return self._metric_event_cpu.labels(mode=mode).mean

    def _make_database(self):
        if self.db_backend == "cassandra":
            from repro.distdb.columnstore import ColumnStoreCluster

            return ColumnStoreCluster(n_nodes=self.db_shards)
        return DatabaseCluster(n_shards=self.db_shards)

    def _build(self, mode: str):
        network = Network()
        for dpid in range(1, self.n_switches + 1):
            switch = network.add_switch(dpid, name=f"cb{dpid}")
            switch.add_port(1)
            switch.add_port(2)
        cluster = ControllerCluster(network, n_instances=1)
        cluster.adopt_all()
        responder = _Responder(cluster, self.match_pool)
        athena: Optional[AthenaDeployment] = None
        if mode in ("with", "with_no_db"):
            athena = AthenaDeployment(
                cluster,
                database=self._make_database(),
                store_features=(mode == "with"),
            )
            athena.start(poll=False)
        return network, cluster, responder, athena

    def _packet_in(self, dpid: int, sequence: int) -> PacketIn:
        src = mac_from_int(0x0C0000000000 + (sequence % self.match_pool))
        dst = mac_from_int(0x0C0000FF0000 + ((sequence // 7) % self.match_pool))
        return PacketIn(
            dpid=dpid,
            buffer_id=-1,
            in_port=1,
            headers={
                "eth_src": src,
                "eth_dst": dst,
                "eth_type": 0x0800,
                "ip_src": f"10.1.{(sequence >> 8) % 250}.{sequence % 250}",
                "ip_dst": "10.2.0.1",
                "ip_proto": 6,
                "tcp_src": 1024 + (sequence % 60000),
                "tcp_dst": 80,
            },
            total_len=64,
        )

    def run_throughput(
        self,
        mode: str = "without",
        duration_seconds: float = 1.0,
        batch: int = 512,
    ) -> CbenchResult:
        """One throughput round: flood PACKET_INs for ``duration_seconds``."""
        network, cluster, responder, _athena = self._build(mode)
        instance = cluster.instances[0]
        switches = list(network.switches)
        # Warm-up: populate code paths and steady-state tables.
        for sequence in range(self.match_pool):
            instance._on_switch_message(
                self._packet_in(switches[sequence % len(switches)], sequence)
            )
        responder.responses = 0
        sequence = self.match_pool
        response_counter = self._metric_responses.labels(mode=mode)
        responses_before = response_counter.value
        watch = Stopwatch()
        while watch.elapsed() < duration_seconds:
            for _ in range(batch):
                instance._on_switch_message(
                    self._packet_in(switches[sequence % len(switches)], sequence)
                )
                sequence += 1
        elapsed = watch.elapsed()
        response_counter.inc(responder.responses)
        self._metric_round_seconds.labels(mode=mode).set(elapsed)
        # The result is derived from the registry, not the raw counter on
        # the responder — benches and runtime metrics share one source.
        return CbenchResult(
            mode=mode,
            responses=int(response_counter.value - responses_before),
            elapsed_seconds=elapsed,
        )

    def run_rounds(
        self,
        mode: str,
        rounds: int = 10,
        duration_seconds: float = 0.5,
    ) -> List[CbenchResult]:
        """Multiple rounds (the paper runs 50), fresh environment each."""
        return [
            self.run_throughput(mode, duration_seconds=duration_seconds)
            for _ in range(rounds)
        ]

    def measure_event_cost(
        self, mode: str, n_events: int = 20000
    ) -> float:
        """Mean CPU seconds per flow event (Figure 11's service demand)."""
        network, cluster, responder, _athena = self._build(mode)
        instance = cluster.instances[0]
        switches = list(network.switches)
        for sequence in range(self.match_pool):
            instance._on_switch_message(
                self._packet_in(switches[sequence % len(switches)], sequence)
            )
        started = cpu_now()
        for sequence in range(self.match_pool, self.match_pool + n_events):
            instance._on_switch_message(
                self._packet_in(switches[sequence % len(switches)], sequence)
            )
        per_event = (cpu_now() - started) / n_events
        self._metric_event_cpu.labels(mode=mode).observe(per_event)
        return per_event


def cpu_usage_curve(
    rates_per_second: List[float],
    event_cost_seconds: float,
    n_cores: int = 6,
) -> List[Tuple[float, float]]:
    """Map offered flow-event rates to CPU utilisation (Figure 11).

    Utilisation is ``rate * per-event CPU cost`` spread over ``n_cores``
    (the paper's hexa-core Xeon), capped at 100% — the saturation point.
    """
    curve = []
    for rate in rates_per_second:
        utilisation = min(100.0, rate * event_cost_seconds / n_cores * 100.0)
        curve.append((rate, utilisation))
    return curve


def saturation_rate(event_cost_seconds: float, n_cores: int = 6) -> float:
    """The offered rate at which the controller saturates (util = 100%)."""
    return n_cores / event_cost_seconds if event_cost_seconds > 0 else float("inf")
